"""Pure point scheduling: keys, cache, chunking, fold order, speculation.

This module is the scheduling half of the engine split.  It owns
everything that determines *what* a sweep computes and in *what order*
results fold together — chip payload canonicalization and digests,
point-cache key derivation and the on-disk :class:`PointCache`, flat-point
chunk grouping, within-point shard plans, and the strict in-order fold
with stop-rule speculation for adaptive points.  It owns nothing about
*where* compute units run: that is the
:class:`~repro.yieldsim.executors.Executor` passed into
:meth:`PointScheduler.run`.

The decomposition is what makes the engine's bit-identity contract
auditable: every number is produced by a fold whose order depends only on
the task list, and the executor can only reorder *completion*, never
*folding*.  Serial, process-pool and inline execution are therefore
bit-identical by construction, and the scheduler is the single place cache
keys are derived — which is also what lets the serving layer
(:mod:`repro.serve`) coalesce identical in-flight requests by the very key
the cache would use.

:class:`~repro.yieldsim.engine.SweepEngine` remains the user-facing
facade: it wires a scheduler to an executor and keeps the run accounting
(budget log, screen stats, estimates).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell, CellRole
from repro.errors import SimulationError
from repro.geometry.hex import Hex
from repro.geometry.square import Square
from repro.yieldsim.executors import Executor, UnitFuture
from repro.yieldsim.kernel import (
    PointSpec,
    RepairStructure,
    ScreenStats,
    model_successes,
    point_entropy,
    point_model,
    shard_plan,
    shard_seed,
    simulate_points,
)
from repro.yieldsim.stats import StopRule

__all__ = [
    "ENGINE_VERSION",
    "EnginePoint",
    "PointCache",
    "PointScheduler",
    "chip_payload",
    "payload_digest",
]

#: Bump when the kernel/sampling semantics change, to invalidate caches.
ENGINE_VERSION = 1

#: Maximum points per shard: small enough to load-balance a grid across
#: workers, large enough to amortize per-chunk pickling.
_CHUNK_POINTS = 4

#: Callback invoked after each in-order fold of a batched point:
#: ``on_fold(task_index, successes, trials)`` with cumulative values.
FoldHook = Callable[[int, int, int], None]


# -- chip payloads ------------------------------------------------------------

def chip_payload(
    chip: Biochip, needed: Optional[Iterable[Hashable]] = None
) -> Dict[str, object]:
    """A minimal, canonical, picklable description of a simulation target.

    Only what the repairability question depends on is included — cell
    coordinates, roles and the needed set.  Health, labels and the chip
    name are deliberately excluded so cosmetic differences cannot split
    the cache.
    """
    kind = None
    cells: List[Tuple[int, int, int]] = []
    for cell in chip:
        coord = cell.coord
        if isinstance(coord, Hex):
            k, a, b = "hex", coord.q, coord.r
        elif isinstance(coord, Square):
            k, a, b = "square", coord.x, coord.y
        else:
            raise SimulationError(
                f"cannot serialize coordinate of type {type(coord).__name__}"
            )
        if kind is None:
            kind = k
        elif kind != k:
            raise SimulationError("chip mixes coordinate systems")
        cells.append((a, b, 1 if cell.is_spare else 0))
    payload: Dict[str, object] = {"coords": kind, "cells": cells}
    if needed is not None:
        needed_pairs = []
        for coord in sorted(set(needed)):
            if isinstance(coord, (Hex, Square)):
                needed_pairs.append(
                    (coord.q, coord.r) if isinstance(coord, Hex) else (coord.x, coord.y)
                )
            else:
                raise SimulationError(
                    f"cannot serialize needed coordinate {coord!r}"
                )
        payload["needed"] = needed_pairs
    return payload


def payload_digest(payload: Dict[str, object]) -> str:
    """Stable SHA-256 digest of a chip payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=list)
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def structure_from_payload(payload: Dict[str, object]) -> RepairStructure:
    """Rebuild the chip from its payload and derive the repair structure."""
    kind = payload["coords"]
    make = Hex if kind == "hex" else Square
    cells = [
        Cell(make(a, b), CellRole.SPARE if spare else CellRole.PRIMARY)
        for a, b, spare in payload["cells"]
    ]
    chip = Biochip(cells, name="engine-target")
    needed = payload.get("needed")
    if needed is not None:
        needed = [make(a, b) for a, b in needed]
    return RepairStructure(chip, needed=needed)


# -- worker-side execution ----------------------------------------------------

#: Per-process memo of chip digest -> RepairStructure, so a sweep that
#: shards many points of one chip builds the structure once per worker.
_STRUCTURES: Dict[str, RepairStructure] = {}


def _structure_for(digest: str, payload: Dict[str, object]) -> RepairStructure:
    struct = _STRUCTURES.get(digest)
    if struct is None:
        struct = structure_from_payload(payload)
        _STRUCTURES[digest] = struct
    return struct


def compute_chunk(
    digest: str,
    payload: Dict[str, object],
    points: Sequence[PointSpec],
    dtype_name: str,
) -> Tuple[List[int], Dict[str, int], List[Optional[Dict[str, int]]]]:
    """Compute one chunk of flat points (the executor's unit function).

    Returns per-point success counts, the chunk's merged screen-stat
    counters, and — per point — the criterion funnel counters (``None``
    for default matching points).  Chunks with no criterion anywhere run
    through :func:`~repro.yieldsim.kernel.simulate_points` exactly as
    before, so legacy streams stay byte-identical.
    """
    struct = _structure_for(digest, payload)
    dtype = np.dtype(dtype_name).type
    if all(point.criterion is None for point in points):
        successes, stats = simulate_points(struct, points, dtype=dtype)
        return successes, stats.as_dict(), [None] * len(points)
    from repro.functional.funnel import criterion_successes

    successes = []
    crits: List[Optional[Dict[str, int]]] = []
    stats = ScreenStats()
    for point in points:
        point.validate(struct.n_cells)
        if point.criterion is None:
            got, point_stats = model_successes(
                struct, point_model(point), point.runs, point.seed, dtype=dtype
            )
            crits.append(None)
        else:
            got, point_stats, crit = criterion_successes(
                struct, point_model(point), point.criterion,
                point.runs, point.seed, dtype=dtype,
            )
            crits.append(crit.wire_dict())
        successes.append(got)
        stats.merge(point_stats)
    return successes, stats.as_dict(), crits


def compute_shard(
    digest: str,
    payload: Dict[str, object],
    spec: PointSpec,
    size: int,
    entropy: int,
    index: int,
    dtype_name: str,
) -> Tuple[int, Dict[str, int]]:
    """Compute one within-point shard (the executor's unit function).

    The shard's stream is fully determined by ``(entropy, index)`` via
    :func:`~repro.yieldsim.kernel.shard_seed`, so any worker — or the
    calling process — computes the identical batch.  The point's defect
    model (explicit, or the legacy-kind alias) travels inside ``spec`` —
    as does its optional success criterion, whose funnel counters ride
    the returned stat dict under ``crit_``-prefixed keys (both readers
    filter to their own key families, so the flat dict stays collision
    free).
    """
    struct = _structure_for(digest, payload)
    rng = np.random.default_rng(shard_seed(entropy, index))
    dtype = np.dtype(dtype_name).type
    if spec.criterion is None:
        got, stats = model_successes(
            struct, point_model(spec), size, seed=rng, dtype=dtype
        )
        return got, stats.as_dict()
    from repro.functional.funnel import criterion_successes

    got, stats, crit = criterion_successes(
        struct, point_model(spec), spec.criterion, size, seed=rng, dtype=dtype
    )
    return got, {**stats.as_dict(), **crit.wire_dict()}


# -- scheduling inputs --------------------------------------------------------

@dataclass(frozen=True)
class EnginePoint:
    """One sweep point: a chip, an optional needed set, and a PointSpec.

    ``stop`` attaches an adaptive sequential budget: the point runs in
    batches of ``stop.batch_runs`` and halts once its Wilson interval is
    as narrow as the rule demands, with ``spec.runs`` as the flat ceiling.
    """

    chip: Biochip
    spec: PointSpec
    needed: Optional[Tuple[Hashable, ...]] = None
    stop: Optional[StopRule] = None


# -- the on-disk point cache --------------------------------------------------

class PointCache:
    """Content-addressed on-disk store of computed points.

    One small JSON file per point, keyed by a SHA-256 digest of
    (chip payload digest, regime, parameter, runs, seed, dtype, engine
    version — plus the defect-model digest for explicit-model points, and
    the batch size and stop-rule digest for batched points).  The key is
    the request/response identity of a point: the serving layer coalesces
    concurrent identical requests by exactly this string.

    ``dir=None`` disables storage but keeps key derivation available;
    hits/misses counters then stay zero, matching the engine's historical
    accounting (misses are only counted when a cache is actually on).
    """

    def __init__(self, cache_dir: Optional[str], dtype_name: str,
                 version: int = ENGINE_VERSION):
        if cache_dir is not None and os.path.exists(cache_dir) and not os.path.isdir(cache_dir):
            raise SimulationError(
                f"cache path {cache_dir!r} exists and is not a directory"
            )
        self.dir = cache_dir
        self.dtype_name = dtype_name
        self.version = version
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------------
    def key(
        self,
        digest: str,
        spec: PointSpec,
        stop: Optional[StopRule] = None,
        batch: Optional[int] = None,
    ) -> str:
        ident: Dict[str, object] = {
            "chip": digest,
            "kind": spec.kind,
            "param": spec.param,
            "runs": spec.runs,
            "seed": spec.seed,
            "dtype": self.dtype_name,
            "version": self.version,
        }
        if spec.model is not None:
            # The model's content digest keys the distribution: two models
            # at equal severity (or a model point and a legacy point at
            # the same p) can never collide in the cache.
            ident["defect_model"] = spec.model.digest()
        if spec.criterion is not None:
            # Same pattern for the success predicate: criterion points key
            # by content digest, and default matching points omit the field
            # entirely, so historical cache entries stay valid.
            ident["criterion"] = spec.criterion.digest()
        if batch is not None:
            # Batched points live under a distinct key family: the batch
            # size defines the RNG stream and the stop-rule digest defines
            # the effective budget, so a flat-budget entry is never served
            # to an adaptive request (or vice versa).
            ident["mode"] = "batched"
            ident["batch"] = batch
            ident["stop"] = stop.digest() if stop is not None else None
        blob = json.dumps(ident, sort_keys=True)
        return hashlib.sha256(blob.encode("ascii")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, f"{key}.json")

    # -- storage --------------------------------------------------------------
    def load(
        self, key: str, spec: PointSpec, batched: bool = False
    ) -> Optional[Tuple[int, int]]:
        """Cached ``(successes, effective trials)`` for a point, if valid.

        A non-hit counts as a miss (the point will have to be computed);
        with no cache directory nothing is counted at all.
        """
        if self.dir is None:
            return None
        entry = self._read(key, spec, batched)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def _read(
        self, key: str, spec: PointSpec, batched: bool
    ) -> Optional[Tuple[int, int]]:
        if batched and spec.seed is None:
            # A seedless batched point has fresh entropy every time; a
            # cache entry for it would be a false hit.
            return None
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                data = json.load(fh)
            successes = data["successes"]
            trials = data["trials"]
            if batched:
                if data["requested"] != spec.runs or not 0 <= successes <= trials <= spec.runs:
                    return None
            elif trials != spec.runs or not 0 <= successes <= spec.runs:
                return None
            return int(successes), int(trials)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(
        self,
        key: str,
        spec: PointSpec,
        successes: int,
        trials: int,
        batched: bool = False,
        stop: Optional[StopRule] = None,
    ) -> None:
        if self.dir is None or (batched and spec.seed is None):
            return
        entry: Dict[str, object] = {
            "successes": successes,
            "trials": trials,
            "kind": spec.kind,
            "param": spec.param,
            "seed": spec.seed,
            "version": self.version,
        }
        if batched:
            entry["requested"] = spec.runs
            entry["stop"] = stop.digest() if stop is not None else None
        os.makedirs(self.dir, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# -- the scheduler ------------------------------------------------------------

class PointScheduler:
    """Turns a task list into ordered, cached, executor-agnostic results.

    The scheduler is pure in the sense that its outputs — per-point
    ``(successes, effective trials)`` pairs — are a function of the task
    list alone.  The executor passed to :meth:`run` decides only where
    compute units execute and how far the scheduler may speculate past an
    adaptive stop point; folds always happen in batch order, so every
    backend produces identical numbers and identical effective budgets.
    """

    def __init__(
        self,
        cache: PointCache,
        dtype: type = np.float32,
        shard_runs: Optional[int] = None,
    ):
        if shard_runs is not None and shard_runs < 1:
            raise SimulationError(f"shard_runs must be >= 1, got {shard_runs}")
        self.cache = cache
        self.dtype = dtype
        self.shard_runs = shard_runs

    # -- key derivation --------------------------------------------------------
    def task_batch(self, task: EnginePoint) -> Optional[int]:
        """Batch size for batched (sharded/adaptive) execution, else None."""
        if task.stop is not None:
            return task.stop.batch_runs
        if self.shard_runs is not None and task.spec.runs > self.shard_runs:
            return self.shard_runs
        return None

    def key_for(self, task: EnginePoint) -> str:
        """The point-cache key (request identity) of one task."""
        payload = chip_payload(task.chip, task.needed)
        return self.cache.key(
            payload_digest(payload), task.spec,
            stop=task.stop, batch=self.task_batch(task),
        )

    # -- execution -------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[EnginePoint],
        executor: Executor,
        *,
        progress: Optional[Callable[[int, int], None]] = None,
        on_fold: Optional[FoldHook] = None,
        stats: Optional[ScreenStats] = None,
        crit_out: Optional[List[Optional[Dict[str, int]]]] = None,
    ) -> List[Tuple[int, int]]:
        """``(successes, effective trials)`` for every task, in order.

        Flat points run as per-chip chunks; points with a stop rule or
        beyond ``shard_runs`` run as per-batch units folded strictly in
        order with the stop rule checked after each fold.  ``on_fold``
        (if given) observes each in-order fold of a batched point —
        cumulative successes/trials — which is what the serving layer
        streams as NDJSON progress.  Screen statistics of folded units
        are merged into ``stats``.

        ``crit_out``, when given, must have one ``None`` slot per task;
        slots of computed criterion points are filled with that point's
        criterion-funnel counters (plain-keyed dict).  Cache hits leave
        their slot ``None`` — the cache stores results, not telemetry —
        and only in-order folds count for batched points, so the counters
        are executor-independent like everything else.
        """
        n = len(tasks)
        results: List[Optional[Tuple[int, int]]] = [None] * n
        stats = stats if stats is not None else ScreenStats()

        # Canonical payload/digest per distinct chip object (and needed set).
        seen: Dict[Tuple[int, Optional[Tuple[Hashable, ...]]], str] = {}
        payload_by_digest: Dict[str, Dict[str, object]] = {}
        digests: List[str] = []
        for task in tasks:
            marker = (id(task.chip), task.needed)
            digest = seen.get(marker)
            if digest is None:
                payload = chip_payload(task.chip, task.needed)
                digest = payload_digest(payload)
                seen[marker] = digest
                payload_by_digest[digest] = payload
            digests.append(digest)

        # Cache pass.
        batch_of = [self.task_batch(task) for task in tasks]
        keys = [
            self.cache.key(digests[i], task.spec, stop=task.stop, batch=batch_of[i])
            for i, task in enumerate(tasks)
        ]
        pending: List[int] = []
        pending_batched: List[int] = []
        done = 0
        for i, task in enumerate(tasks):
            task.spec.validate(len(task.chip))
            cached = self.cache.load(keys[i], task.spec, batched=batch_of[i] is not None)
            if cached is not None:
                results[i] = cached
                done += 1
            else:
                (pending if batch_of[i] is None else pending_batched).append(i)
        if done and progress is not None:
            progress(done, n)

        # Group flat pending points into per-chip chunks (the shard unit).
        # The grouping depends only on the task list, never on the
        # executor, so every backend computes identical chunks.
        chunks: List[Tuple[str, List[int]]] = []
        current_digest: Optional[str] = None
        for i in pending:
            if digests[i] != current_digest or len(chunks[-1][1]) >= _CHUNK_POINTS:
                chunks.append((digests[i], []))
                current_digest = digests[i]
            chunks[-1][1].append(i)

        def record(chunk_indices: List[int], successes: List[int],
                   chunk_stats: Dict[str, int],
                   chunk_crits: List[Optional[Dict[str, int]]]) -> None:
            nonlocal done
            for idx, got, crit in zip(chunk_indices, successes, chunk_crits):
                results[idx] = (got, tasks[idx].spec.runs)
                self.cache.store(keys[idx], tasks[idx].spec, got, tasks[idx].spec.runs)
                if crit is not None and crit_out is not None:
                    from repro.functional.criteria import CriterionStats

                    crit_out[idx] = CriterionStats.from_wire(crit).as_dict()
            stats.merge(ScreenStats.from_dict(chunk_stats))
            done += len(chunk_indices)
            if progress is not None:
                progress(done, n)

        dtype_name = np.dtype(self.dtype).name
        plans = {
            i: shard_plan(
                tasks[i].stop.cap(tasks[i].spec.runs) if tasks[i].stop else tasks[i].spec.runs,
                batch_of[i],
            )
            for i in pending_batched
        }
        shard_units = sum(len(plan) for plan in plans.values())
        executor.start(max(len(chunks), shard_units))
        try:
            # Flat chunks: submit up to capacity, fold results as they
            # complete.  With a capacity-1 immediate executor this is the
            # historical strict chunk-order serial loop.
            queue = deque(chunks)
            inflight: Dict[UnitFuture, List[int]] = {}
            while queue or inflight:
                while queue and len(inflight) < executor.capacity:
                    digest, idxs = queue.popleft()
                    fut = executor.submit(
                        compute_chunk, digest, payload_by_digest[digest],
                        [tasks[i].spec for i in idxs], dtype_name,
                    )
                    inflight[fut] = idxs
                if not inflight:
                    break
                for fut in executor.wait_any(set(inflight)):
                    successes, chunk_stats, chunk_crits = fut.result()
                    record(inflight.pop(fut), successes, chunk_stats, chunk_crits)

            def on_point(i: int, got: int, trials: int) -> None:
                nonlocal done
                results[i] = (got, trials)
                self.cache.store(
                    keys[i], tasks[i].spec, got, trials,
                    batched=True, stop=tasks[i].stop,
                )
                done += 1
                if progress is not None:
                    progress(done, n)

            if pending_batched:
                self._run_batched(
                    tasks, pending_batched, plans, digests, payload_by_digest,
                    executor, on_point, on_fold, stats, crit_out,
                )
        finally:
            executor.shutdown()

        return [pair for pair in results]  # type: ignore[misc]

    def _run_batched(
        self,
        tasks: Sequence[EnginePoint],
        indices: Sequence[int],
        plans: Dict[int, Tuple[int, ...]],
        digests: Sequence[str],
        payload_by_digest: Dict[str, Dict[str, object]],
        executor: Executor,
        on_point: Callable[[int, int, int], None],
        on_fold: Optional[FoldHook],
        stats: ScreenStats,
        crit_out: Optional[List[Optional[Dict[str, int]]]] = None,
    ) -> None:
        """Run the batched points; calls ``on_point(i, successes, trials)``
        as each completes.

        Each point's batches are folded strictly in batch order and its
        stop rule (if any) is checked after each fold, so every point's
        result — successes *and* effective budget — is identical whatever
        the executor.  The submit schedule interleaves batches of
        *different* points (point-major order), so an adaptive sweep keeps
        every worker busy instead of draining one point at a time; batches
        that complete beyond a stop point are discarded, keeping numbers
        and screen stats equal to the capacity-1 fold.  With a capacity-1
        immediate executor no speculation happens at all: each batch is
        computed, folded and stop-checked before the next is submitted.
        """
        dtype_name = np.dtype(self.dtype).name
        entropies = {i: point_entropy(tasks[i].spec.seed) for i in indices}

        # Per-point fold state; a point is live until it stops or folds
        # its whole plan.
        next_fold = {i: 0 for i in indices}
        successes = {i: 0 for i in indices}
        trials = {i: 0 for i in indices}
        complete: set = set()
        crit_acc: Dict[int, object] = {}
        if any(tasks[i].spec.criterion is not None for i in indices):
            from repro.functional.criteria import CriterionStats

            crit_acc = {
                i: CriterionStats()
                for i in indices
                if tasks[i].spec.criterion is not None
            }

        def unit_stream():
            for i in indices:
                for k in range(len(plans[i])):
                    yield i, k

        units = unit_stream()
        futures: Dict[Tuple[int, int], UnitFuture] = {}
        ready: Dict[Tuple[int, int], Tuple[int, Dict[str, int]]] = {}

        def submit_up_to_capacity() -> None:
            while len(futures) < executor.capacity:
                for i, k in units:
                    if i in complete:
                        continue  # point already decided; skip its tail
                    spec = tasks[i].spec
                    futures[(i, k)] = executor.submit(
                        compute_shard, digests[i], payload_by_digest[digests[i]],
                        spec, plans[i][k],
                        entropies[i], k, dtype_name,
                    )
                    break
                else:
                    return  # no units left to submit

        while len(complete) < len(indices):
            submit_up_to_capacity()
            finished = executor.wait_any(set(futures.values()))
            for unit in [u for u, fut in list(futures.items()) if fut in finished]:
                ready[unit] = futures.pop(unit).result()
            for i in indices:
                if i in complete:
                    continue
                rule = tasks[i].stop
                while (i, next_fold[i]) in ready and i not in complete:
                    got, shard_stats = ready.pop((i, next_fold[i]))
                    stats.merge(ScreenStats.from_dict(shard_stats))
                    if i in crit_acc:
                        # Only in-order folds count: speculative shards of
                        # stopped points are discarded below, so criterion
                        # telemetry stays executor-independent too.
                        from repro.functional.criteria import CriterionStats

                        crit_acc[i].merge(CriterionStats.from_wire(shard_stats))
                    successes[i] += got
                    trials[i] += plans[i][next_fold[i]]
                    next_fold[i] += 1
                    if on_fold is not None:
                        on_fold(i, successes[i], trials[i])
                    stopped = rule is not None and rule.should_stop(
                        successes[i], trials[i]
                    )
                    if stopped or next_fold[i] == len(plans[i]):
                        complete.add(i)
                        if i in crit_acc and crit_out is not None:
                            crit_out[i] = crit_acc[i].as_dict()
                        on_point(i, successes[i], trials[i])
            # Drop speculative results (and cancel queued batches) of
            # points that have since completed.
            for unit in [u for u in ready if u[0] in complete]:
                del ready[unit]
            for unit in [u for u, fut in list(futures.items()) if u[0] in complete]:
                futures[unit].cancel()
                del futures[unit]
