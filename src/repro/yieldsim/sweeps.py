"""Parameter sweeps: the series behind Figures 7, 9, 10 and 13.

Each sweep returns plain dataclass records so the experiment drivers,
benchmarks and tests can all consume the same structures.  Seeds are derived
deterministically per point (seed + point index) so a sweep is exactly
reproducible and individual points can be recomputed in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.chip.biochip import Biochip
from repro.designs.interstitial import build_with_primary_count
from repro.designs.spec import DesignSpec
from repro.errors import SimulationError
from repro.yieldsim.analytical import dtmb16_yield, yield_no_redundancy
from repro.yieldsim.effective import chip_effective_yield
from repro.yieldsim.montecarlo import DEFAULT_RUNS, YieldSimulator
from repro.yieldsim.stats import YieldEstimate

__all__ = [
    "SurvivalPoint",
    "DefectCountPoint",
    "survival_sweep",
    "effective_yield_sweep",
    "defect_count_sweep",
    "analytical_curves_dtmb16",
]

#: The survival-probability grid the paper's figures span.
DEFAULT_P_GRID: Tuple[float, ...] = tuple(
    round(0.90 + 0.01 * i, 2) for i in range(11)
)


@dataclass(frozen=True)
class SurvivalPoint:
    """One Monte-Carlo point of a yield-vs-p sweep."""

    design: str
    n: int
    p: float
    estimate: YieldEstimate
    effective: float

    @property
    def yield_value(self) -> float:
        return self.estimate.value


@dataclass(frozen=True)
class DefectCountPoint:
    """One Monte-Carlo point of a yield-vs-m sweep (Figure 13 regime)."""

    m: int
    estimate: YieldEstimate

    @property
    def yield_value(self) -> float:
        return self.estimate.value


def survival_sweep(
    specs: Sequence[DesignSpec],
    ns: Sequence[int],
    ps: Sequence[float] = DEFAULT_P_GRID,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
) -> List[SurvivalPoint]:
    """Monte-Carlo yield of each design at each (n, p) — Figure 9's data.

    Chips are built with exactly ``n`` primary cells per design (the paper
    parameterizes by primary count).  Effective yield uses each chip's
    realized redundancy ratio.
    """
    points: List[SurvivalPoint] = []
    counter = 0
    for spec in specs:
        for n in ns:
            chip = build_with_primary_count(spec, n).build()
            sim = YieldSimulator(chip)
            for p in ps:
                counter += 1
                estimate = sim.run_survival(p, runs=runs, seed=seed + counter)
                points.append(
                    SurvivalPoint(
                        design=spec.name,
                        n=n,
                        p=p,
                        estimate=estimate,
                        effective=chip_effective_yield(chip, estimate),
                    )
                )
    return points


def effective_yield_sweep(
    specs: Sequence[DesignSpec],
    n: int = 100,
    ps: Sequence[float] = DEFAULT_P_GRID,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
) -> List[SurvivalPoint]:
    """Effective-yield comparison at fixed primary count — Figure 10's data."""
    return survival_sweep(specs, [n], ps, runs=runs, seed=seed)


def defect_count_sweep(
    chip: Biochip,
    ms: Sequence[int],
    needed: Optional[Iterable[Hashable]] = None,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
) -> List[DefectCountPoint]:
    """Yield of ``chip`` under exactly-m-fault maps — Figure 13's data."""
    sim = YieldSimulator(chip, needed=needed)
    points: List[DefectCountPoint] = []
    for i, m in enumerate(ms):
        estimate = sim.run_fixed_faults(m, runs=runs, seed=seed + i + 1)
        points.append(DefectCountPoint(m=m, estimate=estimate))
    return points


def analytical_curves_dtmb16(
    ns: Sequence[int], ps: Sequence[float] = DEFAULT_P_GRID
) -> Dict[str, List[Tuple[float, float]]]:
    """The Figure 7 series: DTMB(1,6) analytical yield vs no-redundancy.

    Returns named series ``"DTMB(1,6) n=<n>"`` and ``"no spares n=<n>"``
    so renderers can plot them directly.
    """
    if not ns:
        raise SimulationError("need at least one primary count")
    series: Dict[str, List[Tuple[float, float]]] = {}
    for n in ns:
        series[f"DTMB(1,6) n={n}"] = [(p, dtmb16_yield(p, n)) for p in ps]
        series[f"no spares n={n}"] = [(p, yield_no_redundancy(p, n)) for p in ps]
    return series
