"""Parameter sweeps: the series behind Figures 7, 9, 10 and 13.

Each sweep returns plain dataclass records so the experiment drivers,
benchmarks and tests can all consume the same structures.  Seeds are derived
deterministically from the base seed — ``seed + counter`` per point for the
survival sweeps, one shared ``seed + 1`` for all points of a defect-count
sweep (common random numbers; see :func:`defect_count_sweep`) — so a sweep
is exactly reproducible and individual points can be recomputed in
isolation.

Execution is delegated to :class:`repro.yieldsim.engine.SweepEngine`: the
vectorized screening kernel decides most runs without per-run matching, and
callers may pass their own engine to run points across worker processes
(``jobs > 1``) and/or against an on-disk result cache — with results
bit-identical to the default serial engine either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.chip.biochip import Biochip
from repro.designs.interstitial import build_with_primary_count
from repro.designs.spec import DesignSpec
from repro.errors import SimulationError
from repro.yieldsim.analytical import dtmb16_yield, yield_no_redundancy
from repro.yieldsim.defects import DefectModel
from repro.yieldsim.effective import chip_effective_yield
from repro.yieldsim.engine import EnginePoint, SweepEngine
from repro.yieldsim.kernel import PointSpec
from repro.yieldsim.montecarlo import DEFAULT_RUNS
from repro.yieldsim.stats import StopRule, YieldEstimate

__all__ = [
    "SurvivalPoint",
    "DefectCountPoint",
    "DefectModelPoint",
    "survival_sweep",
    "effective_yield_sweep",
    "defect_count_sweep",
    "defect_model_sweep",
    "analytical_curves_dtmb16",
    "default_engine",
]

#: A p-indexed defect-model family: maps (chip, p) to the model that plays
#: "i.i.d. survival at p" under some spatial regime (see
#: :class:`repro.yieldsim.defects.ModelFamily`).
ModelFamilyLike = Callable[[Biochip, float], DefectModel]

#: The survival-probability grid the paper's figures span.
DEFAULT_P_GRID: Tuple[float, ...] = tuple(
    round(0.90 + 0.01 * i, 2) for i in range(11)
)

#: Shared serial engine used when callers do not supply one.
_DEFAULT_ENGINE: Optional[SweepEngine] = None


def default_engine() -> SweepEngine:
    """The lazily created serial engine behind the plain sweep functions."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = SweepEngine()
    return _DEFAULT_ENGINE


@dataclass(frozen=True)
class SurvivalPoint:
    """One Monte-Carlo point of a yield-vs-p sweep.

    ``model`` names the spatial defect model the point was sampled under
    (``None`` for the default i.i.d. regime).
    """

    design: str
    n: int
    p: float
    estimate: YieldEstimate
    effective: float
    model: Optional[str] = None

    @property
    def yield_value(self) -> float:
        return self.estimate.value


@dataclass(frozen=True)
class DefectCountPoint:
    """One Monte-Carlo point of a yield-vs-m sweep (Figure 13 regime)."""

    m: int
    estimate: YieldEstimate

    @property
    def yield_value(self) -> float:
        return self.estimate.value


@dataclass(frozen=True)
class DefectModelPoint:
    """One Monte-Carlo point of a defect-model sweep on a fixed chip."""

    model: str
    severity: float
    estimate: YieldEstimate
    digest: str

    @property
    def yield_value(self) -> float:
        return self.estimate.value


def survival_sweep(
    specs: Sequence[DesignSpec],
    ns: Sequence[int],
    ps: Sequence[float] = DEFAULT_P_GRID,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    stop: Optional[StopRule] = None,
    model: Optional[ModelFamilyLike] = None,
    criterion: Optional[object] = None,
) -> List[SurvivalPoint]:
    """Monte-Carlo yield of each design at each (n, p) — Figure 9's data.

    Chips are built with exactly ``n`` primary cells per design (the paper
    parameterizes by primary count).  Effective yield uses each chip's
    realized redundancy ratio.  Point seeds follow the historical
    ``seed + counter`` derivation, so a given (specs, ns, ps, runs, seed)
    produces the same numbers whatever engine executes it.

    ``stop`` attaches an adaptive sequential budget to every point: each
    point spends only what it needs to reach the rule's target Wilson
    half-width, with ``runs`` as the flat ceiling (see
    :class:`~repro.yieldsim.stats.StopRule`).

    ``model`` swaps the failure-map distribution: a defect-model family
    (``(chip, p) -> DefectModel``, e.g. from
    :func:`repro.yieldsim.defects.family_from_spec`) replaces the default
    i.i.d.-Bernoulli regime at every point, with p staying the sweep's
    severity axis.  The default (``None``) is bit-identical to the
    historical i.i.d. sweep.

    ``criterion`` swaps the success predicate: a
    :class:`repro.functional.SuccessCriterion` replaces the matching
    verdict at every point (same fault maps, same RNG streams — only what
    counts as a success changes).  The default (``None``) keeps the
    matching predicate and its historical cache keys.
    """
    engine = engine or default_engine()
    meta: List[Tuple[DesignSpec, int, float]] = []
    point_args: List[Tuple[Biochip, float, int]] = []
    counter = 0
    for spec in specs:
        for n in ns:
            chip = build_with_primary_count(spec, n).build()
            for p in ps:
                counter += 1
                meta.append((spec, n, p))
                point_args.append((chip, p, seed + counter))

    # One engine call for the whole sweep: points on the same chip form
    # shard chunks, and all chips' points load-balance across workers.
    if model is None:
        tasks = [
            EnginePoint(
                chip,
                PointSpec("survival", p, runs, pseed, criterion=criterion),
                stop=stop,
            )
            for chip, p, pseed in point_args
        ]
        model_names: List[Optional[str]] = [None] * len(point_args)
    else:
        tasks = []
        model_names = []
        for chip, p, pseed in point_args:
            instance = model(chip, p)
            spec_point = PointSpec.from_model(instance, runs, pseed, param=p)
            if criterion is not None:
                spec_point = PointSpec(
                    spec_point.kind, spec_point.param, spec_point.runs,
                    spec_point.seed, spec_point.model, criterion,
                )
            tasks.append(EnginePoint(chip, spec_point, stop=stop))
            model_names.append(instance.name)
    estimates = engine.run_points(tasks)

    points: List[SurvivalPoint] = []
    for (spec, n, p), (chip, _, _), estimate, mname in zip(
        meta, point_args, estimates, model_names
    ):
        points.append(
            SurvivalPoint(
                design=spec.name,
                n=n,
                p=p,
                estimate=estimate,
                effective=chip_effective_yield(chip, estimate),
                model=mname,
            )
        )
    return points


def effective_yield_sweep(
    specs: Sequence[DesignSpec],
    n: int = 100,
    ps: Sequence[float] = DEFAULT_P_GRID,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    stop: Optional[StopRule] = None,
) -> List[SurvivalPoint]:
    """Effective-yield comparison at fixed primary count — Figure 10's data."""
    return survival_sweep(
        specs, [n], ps, runs=runs, seed=seed, engine=engine, stop=stop
    )


def defect_count_sweep(
    chip: Biochip,
    ms: Sequence[int],
    needed: Optional[Iterable[Hashable]] = None,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    stop: Optional[StopRule] = None,
) -> List[DefectCountPoint]:
    """Yield of ``chip`` under exactly-m-fault maps — Figure 13's data.

    All points share one derived seed (common random numbers): each run
    ranks the cells once, and the m-fault set is the m top-ranked cells,
    so fault sets are *nested* across the sweep.  Every point remains an
    exactly-uniform m-subset draw, but the yield curve is monotone in m
    by construction — no Monte-Carlo wiggle even at small budgets — and
    any single point can still be recomputed in isolation from the seed.

    Under batched execution the shared seed still yields a common stream
    per batch index, so nesting — and the monotone curve — survives
    sharding at fixed budget.  An adaptive ``stop`` rule may stop
    different points at different effective budgets, in which case the
    estimates compare different-length prefixes of the common stream and
    strict monotonicity is no longer structural.
    """
    engine = engine or default_engine()
    estimates = engine.fixed_fault_estimates(
        chip, [(m, seed + 1) for m in ms], runs, needed=needed, stop=stop
    )
    return [
        DefectCountPoint(m=m, estimate=estimate)
        for m, estimate in zip(ms, estimates)
    ]


def defect_model_sweep(
    chip: Biochip,
    models: Sequence[DefectModel],
    needed: Optional[Iterable[Hashable]] = None,
    runs: int = DEFAULT_RUNS,
    seed: int = 2005,
    engine: Optional[SweepEngine] = None,
    stop: Optional[StopRule] = None,
) -> List[DefectModelPoint]:
    """Yield of ``chip`` under each spatial defect model, one engine call.

    The severity axis of the new scenario packs: every model in ``models``
    (any mix of :mod:`repro.yieldsim.defects` instances) becomes one
    engine point on the same chip, so the points share shard chunks, the
    cache keys them by model digest, and ``stop`` rules apply per point
    exactly as in the classic sweeps.

    All points share one derived seed (common random numbers, the
    :func:`defect_count_sweep` discipline).  For model families whose
    sampling is monotone in severity at a common stream — ``FixedCount``
    across m, ``IIDBernoulli``/``NegativeBinomialClustered`` across p,
    ``SpotDefects`` sharing a ``rate_cap`` (see
    :meth:`~repro.yieldsim.defects.SpotDefects.family`) — the shared seed
    makes the fault sets nested and the yield curve monotone by
    construction.  Unrelated models simply get independent-but-
    reproducible estimates.
    """
    engine = engine or default_engine()
    needed_t = tuple(sorted(set(needed))) if needed is not None else None
    tasks = [
        EnginePoint(
            chip, PointSpec.from_model(model, runs, seed + 1), needed_t, stop
        )
        for model in models
    ]
    estimates = engine.run_points(tasks)
    return [
        DefectModelPoint(
            model=model.name,
            severity=model.severity,
            estimate=estimate,
            digest=model.digest(),
        )
        for model, estimate in zip(models, estimates)
    ]


def analytical_curves_dtmb16(
    ns: Sequence[int], ps: Sequence[float] = DEFAULT_P_GRID
) -> Dict[str, List[Tuple[float, float]]]:
    """The Figure 7 series: DTMB(1,6) analytical yield vs no-redundancy.

    Returns named series ``"DTMB(1,6) n=<n>"`` and ``"no spares n=<n>"``
    so renderers can plot them directly.
    """
    if not ns:
        raise SimulationError("need at least one primary count")
    series: Dict[str, List[Tuple[float, float]]] = {}
    for n in ns:
        series[f"DTMB(1,6) n={n}"] = [(p, dtmb16_yield(p, n)) for p in ps]
        series[f"no spares n={n}"] = [(p, yield_no_redundancy(p, n)) for p in ps]
    return series
