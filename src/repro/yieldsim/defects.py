"""Pluggable spatial defect models for the Monte-Carlo yield engine.

The paper's yield claims rest on the assumption that cell failures are
independent ("valid for random and small spot defects").  The defect
literature it cites (Koren & Koren) is largely about when that assumption
*breaks*: real processes produce clustered spot defects, chip-to-chip rate
variation (Stapper's negative-binomial statistics) and systematic
center-to-edge gradients.  This module makes the failure-map distribution a
first-class, pluggable axis of every sweep:

* :class:`DefectModel` — the protocol: a named, parameterized, digestable
  model with one vectorized ``sample_batch(geometry, n_runs, rng)`` that
  returns a boolean ``(runs, cells)`` survival matrix.  The engine treats
  models as opaque: anything satisfying the protocol can ride every sweep,
  cache and manifest.
* :class:`IIDBernoulli` — the paper's assumption; draw-for-draw identical
  to the historical engine stream, so swapping it in changes nothing.
* :class:`FixedCount` — exactly-m-fault maps (the Figure 13 regime).
* :class:`SpotDefects` — compound-Poisson spot defects: centers land
  uniformly and kill every cell within a lattice radius.  The vectorized
  successor of :class:`repro.faults.injection.ClusteredInjector` (which now
  delegates here).  With ``rate_cap`` set, sampling uses a thinned common
  Poisson process so fault sets are *nested* across rates at equal seed —
  the CRN construction behind monotone severity sweeps.
* :class:`NegativeBinomialClustered` — Stapper-style rate mixing: each
  run draws its own failure rate from a Gamma(alpha) mixture, so fault
  counts are negative-binomially distributed across chips.
* :class:`RadialGradient` — a deterministic center-to-edge survival ramp,
  modelling wafer-scale process gradients.

:class:`DefectGeometry` carries the spatial facts a model may need (cell
positions, lattice adjacency, radius-r kill balls), precomputed once per
chip and shared by every model.  :func:`family_from_spec` parses the CLI's
``--defect-model NAME[:k=v,...]`` syntax into a p-indexed model family for
the survival sweeps.

Sampling draws only from the ``numpy.random.Generator`` passed in, so the
kernel's batching/seed discipline (and therefore the engine's
serial == parallel == sharded bit-identity) applies to every model.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from dataclasses import dataclass
from typing import (
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.chip.biochip import Biochip
from repro.errors import FaultModelError
from repro.geometry.hex import Hex, axial_to_pixel
from repro.geometry.square import Square

__all__ = [
    "DefectModel",
    "DefectGeometry",
    "IIDBernoulli",
    "FixedCount",
    "SpotDefects",
    "NegativeBinomialClustered",
    "RadialGradient",
    "fixed_fault_alive",
    "geometry_for",
    "ModelFamily",
    "family_from_spec",
    "available_families",
]


# -- geometry -----------------------------------------------------------------

class DefectGeometry:
    """Spatial facts of one chip, shared by every defect model.

    Holds the sorted cell order (identical to :attr:`Biochip.coords` and
    therefore to the survival-matrix column order everywhere else), the
    lattice adjacency restricted to the array, and Cartesian cell centers.
    Everything beyond the cell count is derived lazily and cached (kill
    balls per radius, adjacency, positions), so non-spatial models —
    which only read ``n_cells`` — pay nothing, and chips with coordinate
    types that have no Cartesian embedding still simulate fine under
    them.

    Build via :func:`geometry_for` (one cached instance per chip) or
    :meth:`from_chip`.
    """

    def __init__(self, chip: Biochip):
        self._chip = chip
        self.n_cells = len(chip.coords)
        self._neighbor_lists: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._xy: Optional[np.ndarray] = None
        self._balls: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._radial_t: Optional[np.ndarray] = None

    @classmethod
    def from_chip(cls, chip: Biochip) -> "DefectGeometry":
        return cls(chip)

    @property
    def neighbor_lists(self) -> Tuple[Tuple[int, ...], ...]:
        """Adjacency as index lists, aligned with the sorted cell order."""
        if self._neighbor_lists is None:
            coords = self._chip.coords
            index = {c: i for i, c in enumerate(coords)}
            self._neighbor_lists = tuple(
                tuple(index[n] for n in self._chip.neighbors(c)) for c in coords
            )
        return self._neighbor_lists

    @property
    def xy(self) -> np.ndarray:
        """(n_cells, 2) Cartesian cell centers ("pointy-top" for hex)."""
        if self._xy is None:
            coords = self._chip.coords
            xy = np.empty((self.n_cells, 2), dtype=np.float64)
            for i, coord in enumerate(coords):
                if isinstance(coord, Hex):
                    xy[i] = axial_to_pixel(coord)
                elif isinstance(coord, Square):
                    xy[i] = (float(coord.x), float(coord.y))
                else:
                    raise FaultModelError(
                        f"cannot derive a position for coordinate type "
                        f"{type(coord).__name__}"
                    )
            self._xy = xy
        return self._xy

    # -- kill balls -----------------------------------------------------------
    def ball(self, radius: int) -> Tuple[np.ndarray, np.ndarray]:
        """Padded ``(idx, mask)`` of the cells within ``radius`` of each cell.

        Row c lists the on-chip cells at lattice distance <= radius of cell
        c (BFS over array adjacency — exactly the spot footprint
        :class:`repro.faults.injection.ClusteredInjector` kills), padded
        with zeros where ``mask`` is False.  Membership is symmetric, so a
        row is equally "the centers whose spot covers cell c".
        """
        if radius < 0:
            raise FaultModelError(f"spot radius must be >= 0, got {radius}")
        cached = self._balls.get(radius)
        if cached is not None:
            return cached
        balls: List[List[int]] = []
        for start in range(self.n_cells):
            frontier = [start]
            seen = {start}
            for _ in range(radius):
                nxt: List[int] = []
                for cell in frontier:
                    for nb in self.neighbor_lists[cell]:
                        if nb not in seen:
                            seen.add(nb)
                            nxt.append(nb)
                frontier = nxt
            balls.append(sorted(seen))
        width = max(len(b) for b in balls)
        idx = np.zeros((self.n_cells, width), dtype=np.int32)
        mask = np.zeros((self.n_cells, width), dtype=bool)
        for c, cells in enumerate(balls):
            idx[c, : len(cells)] = cells
            mask[c, : len(cells)] = True
        self._balls[radius] = (idx, mask)
        return idx, mask

    def ball_sizes(self, radius: int) -> np.ndarray:
        """Number of on-chip cells each radius-r spot kills, per center."""
        _, mask = self.ball(radius)
        return mask.sum(axis=1)

    # -- radial position ------------------------------------------------------
    @property
    def radial_t(self) -> np.ndarray:
        """Normalized distance from the chip centroid: 0 center, 1 edge."""
        if self._radial_t is None:
            delta = self.xy - self.xy.mean(axis=0)
            dist = np.hypot(delta[:, 0], delta[:, 1])
            peak = dist.max()
            self._radial_t = dist / peak if peak > 0 else dist
        return self._radial_t


#: One geometry per chip; weak keys so chips die normally.
_GEOMETRIES: "weakref.WeakKeyDictionary[Biochip, DefectGeometry]" = (
    weakref.WeakKeyDictionary()
)


def geometry_for(chip: Biochip) -> DefectGeometry:
    """The cached :class:`DefectGeometry` of ``chip`` (built on first use)."""
    geom = _GEOMETRIES.get(chip)
    if geom is None:
        geom = DefectGeometry(chip)
        _GEOMETRIES[chip] = geom
    return geom


# -- the protocol -------------------------------------------------------------

@runtime_checkable
class DefectModel(Protocol):
    """What the kernel/engine/sweeps require of a failure-map distribution.

    Implementations are small frozen dataclasses, so they are hashable,
    picklable (they travel to engine worker processes inside
    :class:`~repro.yieldsim.kernel.PointSpec`) and cheap to rebuild.

    ``sample_batch`` must draw only from the Generator it is given and
    must consume a stream that depends on its parameters alone — never on
    prior batches — so the kernel's batch loop defines the stream and the
    engine's bit-identity contract extends to every model.

    Models whose sampling is monotone in their severity parameter at a
    common stream (``IIDBernoulli`` in p, ``FixedCount`` in m,
    ``NegativeBinomialClustered`` in p, ``RadialGradient`` in its levels,
    ``SpotDefects`` in rate *when rate_cap is set*) support common-random-
    number sweeps: sampled at the same seed, their fault sets are nested
    across the severity grid, which makes sweep curves monotone by
    construction (see :func:`repro.yieldsim.sweeps.defect_model_sweep`).
    """

    name: ClassVar[str]

    @property
    def severity(self) -> float:
        """Headline scalar for reports and point records."""
        ...

    def params(self) -> Dict[str, object]:
        """The model's parameters, JSON-serializable."""
        ...

    def digest(self) -> str:
        """Stable content digest of (name, params) — the cache identity."""
        ...

    def validate(self, n_cells: int) -> None:
        """Raise :class:`FaultModelError` if the model cannot target a chip."""
        ...

    def sample_batch(
        self,
        geometry: DefectGeometry,
        n_runs: int,
        rng: np.random.Generator,
        dtype: type = np.float32,
    ) -> np.ndarray:
        """Boolean ``(n_runs, n_cells)`` survival matrix (True = alive)."""
        ...


def _digest(name: str, params: Mapping[str, object]) -> str:
    blob = json.dumps(
        {"model": name, "params": dict(params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    # Short digest, the StopRule.digest() convention: engine cache keys
    # re-hash the whole point identity, and manifests list one entry per
    # calibrated model, so 64 bits keeps them collision-safe *and* small.
    return hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]


class _ModelBase:
    """Shared digest/validate plumbing for the concrete models."""

    name: ClassVar[str] = "?"

    def params(self) -> Dict[str, object]:  # pragma: no cover - overridden
        raise NotImplementedError

    def digest(self) -> str:
        return _digest(self.name, self.params())

    def validate(self, n_cells: int) -> None:
        """Most models fit any chip; FixedCount overrides."""

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params().items())
        return f"{self.name}({inner})"


# -- concrete models ----------------------------------------------------------

@dataclass(frozen=True)
class IIDBernoulli(_ModelBase):
    """Independent per-cell survival with probability p — the paper's model.

    Draw-for-draw identical to the historical engine stream
    (``rng.random((runs, cells), dtype) < p``), so a sweep under this model
    at a fixed seed is bit-identical to the pre-model engine output.
    """

    p: float

    name: ClassVar[str] = "iid"

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise FaultModelError(
                f"survival probability must be in [0, 1], got {self.p}"
            )

    @property
    def severity(self) -> float:
        return self.p

    def params(self) -> Dict[str, object]:
        return {"p": self.p}

    def sample_batch(
        self,
        geometry: DefectGeometry,
        n_runs: int,
        rng: np.random.Generator,
        dtype: type = np.float32,
    ) -> np.ndarray:
        return rng.random((n_runs, geometry.n_cells), dtype=dtype) < self.p


def fixed_fault_alive(
    rng: np.random.Generator, n_cells: int, m: int, size: int
) -> np.ndarray:
    """Boolean ``(size, n_cells)`` survival matrix with exactly m faults/run.

    Draws a uniform random m-subset per run by taking the m smallest of
    ``n_cells`` i.i.d. uniforms (argpartition) — one vectorized draw for
    the whole batch instead of ``size`` Python-level ``rng.choice`` calls.
    """
    alive = np.ones((size, n_cells), dtype=bool)
    if m == 0:
        return alive
    if m >= n_cells:
        alive[:] = False
        return alive
    u = rng.random((size, n_cells))
    faults = np.argpartition(u, m, axis=1)[:, :m]
    alive[np.arange(size)[:, None], faults] = False
    return alive


@dataclass(frozen=True)
class FixedCount(_ModelBase):
    """Exactly ``m`` faulty cells, uniformly without replacement (Fig. 13).

    Sampled at a common seed, the fault sets are nested across m (the
    m smallest of one shared uniform ranking), which is what makes
    defect-count sweeps monotone by construction.
    """

    m: int

    name: ClassVar[str] = "fixed"

    def __post_init__(self) -> None:
        if self.m < 0:
            raise FaultModelError(f"fault count must be >= 0, got {self.m}")

    @property
    def severity(self) -> float:
        return float(self.m)

    def params(self) -> Dict[str, object]:
        return {"m": self.m}

    def validate(self, n_cells: int) -> None:
        if self.m > n_cells:
            raise FaultModelError(
                f"cannot place {self.m} faults on {n_cells} cells"
            )

    def sample_batch(
        self,
        geometry: DefectGeometry,
        n_runs: int,
        rng: np.random.Generator,
        dtype: type = np.float32,
    ) -> np.ndarray:
        self.validate(geometry.n_cells)
        return fixed_fault_alive(rng, geometry.n_cells, self.m, n_runs)


@dataclass(frozen=True)
class SpotDefects(_ModelBase):
    """Compound-Poisson spot defects: centers kill everything in a radius.

    ``rate`` is the expected number of defect centers *per cell* (so a
    chip of C cells sees Poisson(rate * C) centers per run); each center
    lands on a uniformly random cell and kills every cell within lattice
    distance ``radius`` — the spatial model behind "larger particles" in
    the Koren & Koren taxonomy, and the regime where the paper's
    independence assumption is explicitly out of scope.

    ``rate_cap`` opts into the common-random-number construction: centers
    are drawn from one Poisson process at ``rate_cap`` and thinned to
    ``rate``, so two models sharing a cap and a seed produce *nested*
    fault sets (the lower rate's spots are a subset of the higher's).
    The marginal distribution is exactly the uncapped model's; only the
    stream layout changes.  Use :meth:`family` to build a capped,
    severity-ordered model list for a monotone sweep.
    """

    rate: float
    radius: int = 1
    rate_cap: Optional[float] = None

    name: ClassVar[str] = "spot"

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise FaultModelError(f"defect rate must be >= 0, got {self.rate}")
        if self.radius < 0:
            raise FaultModelError(f"spot radius must be >= 0, got {self.radius}")
        if self.rate_cap is not None and self.rate_cap < self.rate:
            raise FaultModelError(
                f"rate_cap ({self.rate_cap}) must be >= rate ({self.rate})"
            )

    @property
    def severity(self) -> float:
        return self.rate

    def params(self) -> Dict[str, object]:
        return {"rate": self.rate, "radius": self.radius, "rate_cap": self.rate_cap}

    def sample_centers(
        self, geometry: DefectGeometry, n_runs: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(run_ids, centers)`` of the active defect centers of a batch.

        The one sampling code path: :meth:`sample_batch` scatters these
        into a survival matrix, and ``ClusteredInjector.sample`` turns
        them into an object-level :class:`~repro.faults.model.FaultMap`.
        With ``rate_cap`` set, the stream depends only on (cap, chip), and
        a center is active iff its thinning mark falls below
        ``rate / rate_cap`` — nested across rates by construction.
        """
        base = self.rate if self.rate_cap is None else self.rate_cap
        counts = rng.poisson(base * geometry.n_cells, size=n_runs)
        total = int(counts.sum())
        run_ids = np.repeat(np.arange(n_runs, dtype=np.int64), counts)
        centers = rng.integers(0, geometry.n_cells, size=total, dtype=np.int64)
        if self.rate_cap is not None:
            marks = rng.random(total)
            keep = marks * self.rate_cap < self.rate
            run_ids, centers = run_ids[keep], centers[keep]
        return run_ids, centers

    def sample_batch(
        self,
        geometry: DefectGeometry,
        n_runs: int,
        rng: np.random.Generator,
        dtype: type = np.float32,
    ) -> np.ndarray:
        n = geometry.n_cells
        alive = np.ones((n_runs, n), dtype=bool)
        run_ids, centers = self.sample_centers(geometry, n_runs, rng)
        if run_ids.size:
            idx, mask = geometry.ball(self.radius)
            cells = idx[centers]
            flat = run_ids[:, None] * n + cells
            alive.reshape(-1)[flat[mask[centers]]] = False
        return alive

    # -- severity calibration -------------------------------------------------
    def cell_death_probabilities(self, geometry: DefectGeometry) -> np.ndarray:
        """Exact per-cell death probability: 1 - exp(-rate * |ball(c)|).

        Cell c dies iff at least one center lands within ``radius`` of it;
        ball membership is symmetric, so the number of such centers is
        Poisson with mean ``rate * |ball(c)|``.
        """
        return 1.0 - np.exp(-self.rate * geometry.ball_sizes(self.radius))

    def mean_kill_fraction(self, geometry: DefectGeometry) -> float:
        """Expected fraction of dead cells per run on this chip."""
        return float(self.cell_death_probabilities(geometry).mean())

    @classmethod
    def calibrate(
        cls,
        geometry: DefectGeometry,
        kill_fraction: float,
        radius: int = 1,
        rate_cap: Optional[float] = None,
    ) -> "SpotDefects":
        """The spot model whose mean kill fraction equals ``kill_fraction``.

        This is how clustered scenarios match an i.i.d. model's severity:
        ``calibrate(geom, 1 - p)`` kills the same expected number of cells
        as ``IIDBernoulli(p)``, concentrating them in spots.  Solved by
        bisection on the closed-form mean (deterministic, no sampling).
        """
        if not 0.0 <= kill_fraction < 1.0:
            raise FaultModelError(
                f"kill fraction must be in [0, 1), got {kill_fraction}"
            )
        if kill_fraction == 0.0:
            return cls(0.0, radius, rate_cap)
        sizes = geometry.ball_sizes(radius)

        def mean_kill(rate: float) -> float:
            return float((1.0 - np.exp(-rate * sizes)).mean())

        hi = 1.0 / float(sizes.mean())
        while mean_kill(hi) < kill_fraction:
            hi *= 2.0
        lo = 0.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if mean_kill(mid) < kill_fraction:
                lo = mid
            else:
                hi = mid
        return cls(hi, radius, rate_cap)

    @classmethod
    def family(
        cls,
        geometry: DefectGeometry,
        kill_fractions: Tuple[float, ...],
        radius: int = 1,
    ) -> List["SpotDefects"]:
        """Severity-calibrated models sharing one CRN ``rate_cap``.

        Sampled at a common seed (as ``defect_model_sweep`` does), the
        returned models' fault sets are nested across the grid, so the
        yield curve is monotone by construction.
        """
        plain = [cls.calibrate(geometry, k, radius) for k in kill_fractions]
        cap = max(model.rate for model in plain) if plain else 0.0
        return [cls(model.rate, radius, rate_cap=cap) for model in plain]


@dataclass(frozen=True)
class NegativeBinomialClustered(_ModelBase):
    """Stapper-style rate mixing: each run draws its own failure rate.

    The per-run failure rate is ``Gamma(alpha, q/alpha)`` (mean ``q = 1-p``,
    clipped at 1), and cells then fail independently at that rate, so the
    per-chip fault count is (approximately, exactly for an infinite chip)
    negative-binomially distributed — the classic large-area clustering
    statistics.  ``alpha -> inf`` recovers :class:`IIDBernoulli`; small
    ``alpha`` concentrates the same expected faults on few unlucky chips.
    """

    p: float
    alpha: float = 2.0

    name: ClassVar[str] = "negbin"

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise FaultModelError(
                f"survival probability must be in [0, 1], got {self.p}"
            )
        if not self.alpha > 0:
            raise FaultModelError(
                f"dispersion alpha must be > 0, got {self.alpha}"
            )

    @property
    def severity(self) -> float:
        return self.p

    def params(self) -> Dict[str, object]:
        return {"p": self.p, "alpha": self.alpha}

    def sample_batch(
        self,
        geometry: DefectGeometry,
        n_runs: int,
        rng: np.random.Generator,
        dtype: type = np.float32,
    ) -> np.ndarray:
        # Gamma shape (and therefore stream consumption) depends only on
        # alpha, so models differing only in p share a stream at equal
        # seed and their fault sets are nested across p (CRN).
        mix = rng.standard_gamma(self.alpha, size=n_runs)
        q = np.minimum(mix * ((1.0 - self.p) / self.alpha), 1.0)
        u = rng.random((n_runs, geometry.n_cells), dtype=dtype)
        return u >= q[:, None]


@dataclass(frozen=True)
class RadialGradient(_ModelBase):
    """Center-to-edge survival ramp: wafer-scale process gradients.

    Cell survival interpolates from ``p_center`` at the chip centroid to
    ``p_edge`` at the outermost cell along normalized radial distance
    raised to ``power``; cells then fail independently at their own rate.
    Spatially *systematic* rather than random: edge rings are reliably
    worse, which stresses boundary spares specifically.
    """

    p_center: float
    p_edge: float
    power: float = 1.0

    name: ClassVar[str] = "gradient"

    def __post_init__(self) -> None:
        for label, value in (("p_center", self.p_center), ("p_edge", self.p_edge)):
            if not 0.0 <= value <= 1.0:
                raise FaultModelError(
                    f"{label} must be in [0, 1], got {value}"
                )
        if not self.power > 0:
            raise FaultModelError(f"gradient power must be > 0, got {self.power}")

    @property
    def severity(self) -> float:
        return (self.p_center + self.p_edge) / 2.0

    def params(self) -> Dict[str, object]:
        return {
            "p_center": self.p_center,
            "p_edge": self.p_edge,
            "power": self.power,
        }

    def survival_vector(self, geometry: DefectGeometry) -> np.ndarray:
        """Per-cell survival probability along the ramp."""
        t = geometry.radial_t ** self.power
        return self.p_center + (self.p_edge - self.p_center) * t

    def mean_survival(self, geometry: DefectGeometry) -> float:
        return float(self.survival_vector(geometry).mean())

    def sample_batch(
        self,
        geometry: DefectGeometry,
        n_runs: int,
        rng: np.random.Generator,
        dtype: type = np.float32,
    ) -> np.ndarray:
        pvec = self.survival_vector(geometry).astype(np.float64)
        u = rng.random((n_runs, geometry.n_cells), dtype=dtype)
        return u < pvec[None, :]

    @classmethod
    def calibrate(
        cls,
        geometry: DefectGeometry,
        mean_p: float,
        spread: float,
        power: float = 1.0,
    ) -> "RadialGradient":
        """The ramp with mean cell survival exactly ``mean_p``.

        ``spread`` is the requested ``p_center - p_edge`` drop; it is
        clamped so both endpoints stay in [0, 1] (at ``mean_p == 1`` the
        ramp degenerates to i.i.d. — a perfect process has no gradient).
        """
        if not 0.0 <= mean_p <= 1.0:
            raise FaultModelError(
                f"mean survival must be in [0, 1], got {mean_p}"
            )
        if spread < 0:
            raise FaultModelError(f"gradient spread must be >= 0, got {spread}")
        t_mean = float((geometry.radial_t ** power).mean())
        # mean = p_center - spread * t_mean; clamp spread into the box.
        limit = spread
        if t_mean > 0:
            limit = min(limit, (1.0 - mean_p) / t_mean)
        if t_mean < 1:
            limit = min(limit, mean_p / (1.0 - t_mean))
        limit = max(0.0, limit)
        p_center = mean_p + limit * t_mean
        return cls(min(p_center, 1.0), max(p_center - limit, 0.0), power)


# -- CLI model families -------------------------------------------------------

@dataclass(frozen=True)
class ModelFamily:
    """A p-indexed family of defect models for survival-style sweeps.

    Calling the family with ``(chip, p)`` builds the model that plays the
    role of "i.i.d. survival at p" under this spatial regime — calibrated
    per chip where the model needs geometry.  This is what
    ``survival_sweep(model=...)`` and the CLI's ``--defect-model`` pass
    around.
    """

    name: str
    spec: str
    build: Callable[[Biochip, float], "DefectModel"]

    def __call__(self, chip: Biochip, p: float) -> "DefectModel":
        return self.build(chip, p)

    def describe(self) -> str:
        return self.spec


def _build_iid(params: Dict[str, float]) -> Callable[[Biochip, float], DefectModel]:
    _require_keys("iid", params, ())
    return lambda chip, p: IIDBernoulli(p)


def _build_spot(params: Dict[str, float]) -> Callable[[Biochip, float], DefectModel]:
    _require_keys("spot", params, ("radius",))
    raw = params.get("radius", 1)
    if raw != int(raw):
        raise FaultModelError(
            f"spot radius must be a whole number of lattice steps, got {raw}"
        )
    radius = int(raw)

    def build(chip: Biochip, p: float) -> DefectModel:
        if not 0.0 < p <= 1.0:
            raise FaultModelError(
                f"spot calibration needs survival p in (0, 1], got {p}"
            )
        return SpotDefects.calibrate(geometry_for(chip), 1.0 - p, radius)

    return build


def _build_negbin(params: Dict[str, float]) -> Callable[[Biochip, float], DefectModel]:
    _require_keys("negbin", params, ("alpha",))
    alpha = float(params.get("alpha", 2.0))
    return lambda chip, p: NegativeBinomialClustered(p, alpha)


def _build_gradient(
    params: Dict[str, float],
) -> Callable[[Biochip, float], DefectModel]:
    _require_keys("gradient", params, ("spread", "power"))
    spread = float(params.get("spread", 0.05))
    power = float(params.get("power", 1.0))
    return lambda chip, p: RadialGradient.calibrate(
        geometry_for(chip), p, spread, power
    )


_FAMILIES: Dict[str, Callable[[Dict[str, float]], Callable[[Biochip, float], DefectModel]]] = {
    "iid": _build_iid,
    "spot": _build_spot,
    "negbin": _build_negbin,
    "gradient": _build_gradient,
}


def available_families() -> Tuple[str, ...]:
    """The family names ``--defect-model`` accepts."""
    return tuple(sorted(_FAMILIES))


def _require_keys(
    name: str, params: Mapping[str, float], allowed: Tuple[str, ...]
) -> None:
    unknown = set(params) - set(allowed)
    if unknown:
        raise FaultModelError(
            f"unknown parameter(s) {sorted(unknown)} for defect model "
            f"{name!r} (accepts: {sorted(allowed) or 'none'})"
        )


def family_from_spec(spec: str) -> ModelFamily:
    """Parse ``NAME[:k=v,...]`` (the CLI ``--defect-model`` syntax).

    Examples: ``iid``, ``spot``, ``spot:radius=2``, ``negbin:alpha=0.5``,
    ``gradient:spread=0.08,power=2``.  The family maps each sweep
    survival probability p to a model of matched severity (spot models
    are calibrated per chip to kill ``1 - p`` of cells in expectation;
    gradients ramp around a mean of p).
    """
    text = spec.strip()
    name, _, tail = text.partition(":")
    name = name.strip().lower()
    builder = _FAMILIES.get(name)
    if builder is None:
        raise FaultModelError(
            f"unknown defect model {name!r} "
            f"(available: {', '.join(available_families())})"
        )
    params: Dict[str, float] = {}
    if tail.strip():
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                raise FaultModelError(
                    f"malformed defect-model parameter {item!r} "
                    "(expected k=v)"
                )
            try:
                params[key.strip()] = float(value)
            except ValueError:
                raise FaultModelError(
                    f"defect-model parameter {key.strip()!r} needs a "
                    f"numeric value, got {value!r}"
                ) from None
    return ModelFamily(name=name, spec=text, build=builder(params))
