"""Parallel sweep execution engine: screen -> match, sharded, cached.

This module turns the per-point Monte-Carlo work of the yield sweeps
(Figures 7, 9, 10, 13 and Table 1's companions) into independent,
shardable units and runs them through the vectorized screening kernel.

The screen->match funnel
------------------------
Every point is simulated by :mod:`repro.yieldsim.kernel`: fault maps for
all runs are drawn in bulk with numpy, a funnel of exact vectorized
reductions (zero-fault / dead-end / forced-move / private-spare peeling /
Hall bounds) decides the overwhelming majority of runs, and only the
ambiguous residue falls back to per-run integer Kuhn matching.  The
funnel is *exact*, so the engine's numbers equal brute-force
``YieldSimulator`` matching run for run; with ``dtype=float64`` they are
bit-identical to it.

The seed-derivation contract
----------------------------
Each sweep point carries its own integer seed, derived by the *caller*
(``sweeps.py`` keeps the historical ``base_seed + counter`` scheme) and
consumed by a fresh ``numpy`` Generator for that point alone.  No point
ever reads another point's stream, so:

* a sweep is exactly reproducible from its base seed;
* any single point can be recomputed in isolation;
* serial (``jobs=1``) and parallel (``jobs>1``) execution are
  **bit-identical** — sharding only changes *where* a point is computed,
  never what it computes.

Parallelism and caching
-----------------------
``jobs > 1`` shards points across a ``ProcessPoolExecutor``; chips travel
to workers as compact payload dicts and each worker memoizes the derived
:class:`~repro.yieldsim.kernel.RepairStructure` by chip digest.  An
optional on-disk cache stores one small JSON file per point, keyed by a
SHA-256 digest of (chip cells, needed set, regime, parameter, runs, seed,
dtype, engine version), so repeated sweeps — e.g. re-rendering a figure
at the paper budget — cost nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell, CellRole
from repro.errors import SimulationError
from repro.geometry.hex import Hex
from repro.geometry.square import Square
from repro.yieldsim.kernel import PointSpec, RepairStructure, ScreenStats, simulate_points
from repro.yieldsim.stats import YieldEstimate

__all__ = ["SweepEngine", "EnginePoint", "chip_payload", "payload_digest"]

#: Bump when the kernel/sampling semantics change, to invalidate caches.
ENGINE_VERSION = 1

#: Maximum points per shard: small enough to load-balance a grid across
#: workers, large enough to amortize per-chunk pickling.
_CHUNK_POINTS = 4


# -- chip payloads ------------------------------------------------------------

def chip_payload(
    chip: Biochip, needed: Optional[Iterable[Hashable]] = None
) -> Dict[str, object]:
    """A minimal, canonical, picklable description of a simulation target.

    Only what the repairability question depends on is included — cell
    coordinates, roles and the needed set.  Health, labels and the chip
    name are deliberately excluded so cosmetic differences cannot split
    the cache.
    """
    kind = None
    cells: List[Tuple[int, int, int]] = []
    for cell in chip:
        coord = cell.coord
        if isinstance(coord, Hex):
            k, a, b = "hex", coord.q, coord.r
        elif isinstance(coord, Square):
            k, a, b = "square", coord.x, coord.y
        else:
            raise SimulationError(
                f"cannot serialize coordinate of type {type(coord).__name__}"
            )
        if kind is None:
            kind = k
        elif kind != k:
            raise SimulationError("chip mixes coordinate systems")
        cells.append((a, b, 1 if cell.is_spare else 0))
    payload: Dict[str, object] = {"coords": kind, "cells": cells}
    if needed is not None:
        needed_pairs = []
        for coord in sorted(set(needed)):
            if isinstance(coord, (Hex, Square)):
                needed_pairs.append(
                    (coord.q, coord.r) if isinstance(coord, Hex) else (coord.x, coord.y)
                )
            else:
                raise SimulationError(
                    f"cannot serialize needed coordinate {coord!r}"
                )
        payload["needed"] = needed_pairs
    return payload


def payload_digest(payload: Dict[str, object]) -> str:
    """Stable SHA-256 digest of a chip payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=list)
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def _structure_from_payload(payload: Dict[str, object]) -> RepairStructure:
    """Rebuild the chip from its payload and derive the repair structure."""
    kind = payload["coords"]
    make = Hex if kind == "hex" else Square
    cells = [
        Cell(make(a, b), CellRole.SPARE if spare else CellRole.PRIMARY)
        for a, b, spare in payload["cells"]
    ]
    chip = Biochip(cells, name="engine-target")
    needed = payload.get("needed")
    if needed is not None:
        needed = [make(a, b) for a, b in needed]
    return RepairStructure(chip, needed=needed)


# -- worker-side execution ----------------------------------------------------

#: Per-process memo of chip digest -> RepairStructure, so a sweep that
#: shards many points of one chip builds the structure once per worker.
_STRUCTURES: Dict[str, RepairStructure] = {}


def _structure_for(digest: str, payload: Dict[str, object]) -> RepairStructure:
    struct = _STRUCTURES.get(digest)
    if struct is None:
        struct = _structure_from_payload(payload)
        _STRUCTURES[digest] = struct
    return struct


def _compute_batch(
    digest: str,
    payload: Dict[str, object],
    points: Sequence[PointSpec],
    dtype_name: str,
) -> Tuple[List[int], Dict[str, int]]:
    """Compute one shard of points (runs in the worker process)."""
    struct = _structure_for(digest, payload)
    successes, stats = simulate_points(struct, points, dtype=np.dtype(dtype_name).type)
    return successes, stats.as_dict()


# -- the engine ---------------------------------------------------------------

@dataclass(frozen=True)
class EnginePoint:
    """One sweep point: a chip, an optional needed set, and a PointSpec."""

    chip: Biochip
    spec: PointSpec
    needed: Optional[Tuple[Hashable, ...]] = None


class SweepEngine:
    """Executes batches of Monte-Carlo points, optionally in parallel.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs in-process; results are
        bit-identical either way (see the module docstring's seed
        contract).
    cache_dir:
        Directory for the on-disk point cache; ``None`` disables caching.
        Created on first use.  Safe to share between serial and parallel
        runs — entries are keyed per point.
    progress:
        Optional ``progress(done, total)`` callback, invoked after every
        completed (or cache-hit) point chunk.
    dtype:
        Uniform-draw dtype for the survival regime.  The ``float32``
        default halves RNG cost; use ``numpy.float64`` to reproduce the
        legacy ``YieldSimulator`` stream bit for bit.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        dtype: type = np.float32,
    ):
        if jobs < 1:
            raise SimulationError(f"jobs must be >= 1, got {jobs}")
        if cache_dir is not None and os.path.exists(cache_dir) and not os.path.isdir(cache_dir):
            raise SimulationError(
                f"cache path {cache_dir!r} exists and is not a directory"
            )
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.progress = progress
        self.dtype = dtype
        #: cumulative cache counters (for tests and reports)
        self.cache_hits = 0
        self.cache_misses = 0
        #: merged screen statistics of everything this engine computed
        self.screen_stats = ScreenStats()

    # -- cache ----------------------------------------------------------------
    def _point_key(self, digest: str, spec: PointSpec) -> str:
        blob = json.dumps(
            {
                "chip": digest,
                "kind": spec.kind,
                "param": spec.param,
                "runs": spec.runs,
                "seed": spec.seed,
                "dtype": np.dtype(self.dtype).name,
                "version": ENGINE_VERSION,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("ascii")).hexdigest()

    def _cache_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _cache_load(self, key: str, spec: PointSpec) -> Optional[int]:
        if self.cache_dir is None:
            return None
        try:
            with open(self._cache_path(key), "r", encoding="utf-8") as fh:
                data = json.load(fh)
            successes = data["successes"]
            if data["trials"] != spec.runs or not 0 <= successes <= spec.runs:
                return None
            return int(successes)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _cache_store(self, key: str, spec: PointSpec, successes: int) -> None:
        if self.cache_dir is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._cache_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "successes": successes,
                        "trials": spec.runs,
                        "kind": spec.kind,
                        "param": spec.param,
                        "seed": spec.seed,
                        "version": ENGINE_VERSION,
                    },
                    fh,
                )
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- execution -------------------------------------------------------------
    def run_points(self, tasks: Sequence[EnginePoint]) -> List[YieldEstimate]:
        """Estimates for ``tasks``, in order; shards across jobs if > 1."""
        n = len(tasks)
        results: List[Optional[int]] = [None] * n

        # Canonical payload/digest per distinct chip object (and needed set).
        seen: Dict[Tuple[int, Optional[Tuple[Hashable, ...]]], str] = {}
        payload_by_digest: Dict[str, Dict[str, object]] = {}
        digests: List[str] = []
        for task in tasks:
            marker = (id(task.chip), task.needed)
            digest = seen.get(marker)
            if digest is None:
                payload = chip_payload(task.chip, task.needed)
                digest = payload_digest(payload)
                seen[marker] = digest
                payload_by_digest[digest] = payload
            digests.append(digest)

        # Cache pass.
        pending: List[int] = []
        done = 0
        for i, task in enumerate(tasks):
            task.spec.validate(len(task.chip))
            cached = self._cache_load(self._point_key(digests[i], task.spec), task.spec)
            if cached is not None:
                results[i] = cached
                self.cache_hits += 1
                done += 1
            else:
                pending.append(i)
                if self.cache_dir is not None:
                    self.cache_misses += 1
        if done and self.progress is not None:
            self.progress(done, n)

        # Group pending points into per-chip chunks (the shard unit).  The
        # grouping depends only on the task list, never on jobs, so serial
        # and parallel runs compute identical chunks.
        chunks: List[Tuple[str, List[int]]] = []
        current_digest: Optional[str] = None
        for i in pending:
            if digests[i] != current_digest or len(chunks[-1][1]) >= _CHUNK_POINTS:
                chunks.append((digests[i], []))
                current_digest = digests[i]
            chunks[-1][1].append(i)

        def record(chunk_indices: List[int], successes: List[int], stats: Dict[str, int]) -> None:
            nonlocal done
            for idx, got in zip(chunk_indices, successes):
                results[idx] = got
                self._cache_store(
                    self._point_key(digests[idx], tasks[idx].spec), tasks[idx].spec, got
                )
            self.screen_stats.merge(ScreenStats.from_dict(stats))
            done += len(chunk_indices)
            if self.progress is not None:
                self.progress(done, n)

        dtype_name = np.dtype(self.dtype).name
        if self.jobs == 1 or len(chunks) <= 1:
            for digest, idxs in chunks:
                successes, stats = _compute_batch(
                    digest, payload_by_digest[digest],
                    [tasks[i].spec for i in idxs], dtype_name,
                )
                record(idxs, successes, stats)
        else:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(chunks))) as pool:
                futures = {
                    pool.submit(
                        _compute_batch, digest, payload_by_digest[digest],
                        [tasks[i].spec for i in idxs], dtype_name,
                    ): idxs
                    for digest, idxs in chunks
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for fut in finished:
                        successes, stats = fut.result()
                        record(futures[fut], successes, stats)

        return [
            YieldEstimate(successes=results[i], trials=tasks[i].spec.runs)
            for i in range(n)
        ]

    # -- conveniences ----------------------------------------------------------
    def survival_estimates(
        self,
        chip: Biochip,
        points: Sequence[Tuple[float, int]],
        runs: int,
        needed: Optional[Iterable[Hashable]] = None,
    ) -> List[YieldEstimate]:
        """Survival-regime estimates for ``(p, seed)`` pairs on one chip."""
        needed_t = tuple(sorted(set(needed))) if needed is not None else None
        tasks = [
            EnginePoint(chip, PointSpec("survival", p, runs, seed), needed_t)
            for p, seed in points
        ]
        return self.run_points(tasks)

    def fixed_fault_estimates(
        self,
        chip: Biochip,
        points: Sequence[Tuple[int, int]],
        runs: int,
        needed: Optional[Iterable[Hashable]] = None,
    ) -> List[YieldEstimate]:
        """Fixed-fault-count estimates for ``(m, seed)`` pairs on one chip."""
        needed_t = tuple(sorted(set(needed))) if needed is not None else None
        tasks = [
            EnginePoint(chip, PointSpec("fixed", m, runs, seed), needed_t)
            for m, seed in points
        ]
        return self.run_points(tasks)
