"""Sweep execution facade: a pure scheduler wired to a pluggable executor.

This module turns the per-point Monte-Carlo work of the yield sweeps
(Figures 7, 9, 10, 13 and Table 1's companions) into independent,
shardable units and runs them through the vectorized screening kernel.
Since the scheduler/executor split it is a thin facade over two layers:

* :mod:`repro.yieldsim.scheduler` — the pure
  :class:`~repro.yieldsim.scheduler.PointScheduler`: chip payload
  canonicalization, point-cache key derivation and the on-disk
  :class:`~repro.yieldsim.scheduler.PointCache`, flat-point chunking,
  within-point shard plans, and the strict in-order fold with stop-rule
  speculation for adaptive points.
* :mod:`repro.yieldsim.executors` — *where* compute units run: the
  :class:`~repro.yieldsim.executors.Executor` protocol with
  :class:`~repro.yieldsim.executors.SerialExecutor` (in-process),
  :class:`~repro.yieldsim.executors.PoolExecutor`
  (``ProcessPoolExecutor``-backed) and
  :class:`~repro.yieldsim.executors.InlineExecutor` (deterministic
  in-process speculation, for tests).

:class:`SweepEngine` keeps the historical user-facing API —
``SweepEngine(jobs=..., cache_dir=..., shard_runs=...)`` — plus run
accounting (budget log, cache traffic, screen stats) and convenience
estimators.  Pass ``executor=`` to pin a specific backend; otherwise
``jobs`` picks the serial or pool backend exactly as before.

The screen->match funnel
------------------------
Every point is simulated by :mod:`repro.yieldsim.kernel`: fault maps for
all runs are drawn in bulk with numpy, a funnel of exact vectorized
reductions (zero-fault / dead-end / forced-move / private-spare peeling /
Hall bounds) decides the overwhelming majority of runs, and only the
ambiguous residue falls back to per-run integer Kuhn matching.  The
funnel is *exact*, so the engine's numbers equal brute-force
``YieldSimulator`` matching run for run; with ``dtype=float64`` they are
bit-identical to it.

The seed-derivation contract
----------------------------
Each sweep point carries its own integer seed, derived by the *caller*
(``sweeps.py`` keeps the historical ``base_seed + counter`` scheme) and
consumed by a fresh ``numpy`` Generator for that point alone.  No point
ever reads another point's stream, so:

* a sweep is exactly reproducible from its base seed;
* any single point can be recomputed in isolation;
* serial, process-pool and inline execution are **bit-identical** — the
  executor only changes *where* a unit is computed and how far the
  scheduler speculates, never what anything computes (results fold in a
  fixed order regardless; see :mod:`repro.yieldsim.scheduler`).

Within-point sharding and adaptive budgets
------------------------------------------
A point enters *batched* execution when it carries a
:class:`~repro.yieldsim.stats.StopRule` (adaptive budget) or when its
``runs`` exceed the engine's ``shard_runs`` (one huge point — a p-grid
corner at 10^6+ runs — split across the workers).  A batched point's
stream is defined by its batch plan alone: batch ``k`` draws from
``SeedSequence(seed, spawn_key=(k,))`` (the ``SeedSequence.spawn``
derivation, constructible per shard in isolation), so the point's result
is a pure function of (spec, rule/batch size).  Under a stop rule,
batches are folded strictly in batch order and the rule is checked after
each fold; a multi-capacity executor merely speculates on later batches
and discards them past the stop point, so the effective budget is
deterministic given the seed.  An adaptive point that never meets its
target spends exactly its full plan — bit-identical to the fixed-budget
batched run of the same point.

Flat, unsharded points (the default) keep the legacy single-stream draw
and remain bit-identical to the pre-engine implementation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.chip.biochip import Biochip
from repro.errors import SimulationError
from repro.yieldsim.cachestore import (
    CacheStore,
    LocalStore,
    MemoryStore,
    StoreStats,
    TieredCache,
    entry_validator,
)
from repro.obs.trace import Tracer
from repro.yieldsim.executors import Executor, default_executor
from repro.yieldsim.kernel import PointSpec, ScreenStats
from repro.yieldsim.resilience import ResilienceStats, RetryPolicy
from repro.yieldsim.scheduler import (
    ENGINE_VERSION,
    EnginePoint,
    PointCache,
    PointScheduler,
    chip_payload,
    payload_digest,
)
from repro.yieldsim.stats import StopRule, YieldEstimate

__all__ = [
    "SweepEngine",
    "EnginePoint",
    "PointRecord",
    "ENGINE_VERSION",
    "chip_payload",
    "payload_digest",
]

#: Deprecation shim: names that used to live (or would be guessed to
#: live) in this module resolve to their new homes with a warning, so
#: pre-split deep imports keep working while callers migrate to
#: :mod:`repro.yieldsim.scheduler` / :mod:`repro.yieldsim.executors` (or
#: the top-level :mod:`repro` API).
#: Names that moved out in the scheduler/executor split and are *not*
#: part of this facade's own working set (those — Executor,
#: default_executor, PointCache, PointScheduler — remain importable here
#: as ordinary attributes).  Deep imports of these resolve with a
#: DeprecationWarning pointing at the new home.
_MOVED = {
    "SerialExecutor": ("repro.yieldsim.executors", "SerialExecutor"),
    "InlineExecutor": ("repro.yieldsim.executors", "InlineExecutor"),
    "PoolExecutor": ("repro.yieldsim.executors", "PoolExecutor"),
    "_compute_batch": ("repro.yieldsim.scheduler", "compute_chunk"),
    "_compute_shard": ("repro.yieldsim.scheduler", "compute_shard"),
    "_structure_from_payload": ("repro.yieldsim.scheduler", "structure_from_payload"),
}


def __getattr__(name: str):
    moved = _MOVED.get(name)
    if moved is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr = moved
    warnings.warn(
        f"importing {name!r} from repro.yieldsim.engine is deprecated; "
        f"use {module_name}.{attr}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


@dataclass(frozen=True)
class PointRecord:
    """Requested-vs-effective budget accounting for one executed point.

    ``model``/``model_digest`` name the explicit defect model of a
    ``"model"``-kind point (None for the legacy i.i.d./fixed regimes), so
    provenance consumers can attribute every Monte-Carlo run to the
    distribution that produced it.  ``criterion``/``criterion_digest``
    do the same for the success predicate of functional-yield points, and
    ``funnel`` carries that point's criterion-funnel counters (where each
    run was decided: screens vs scheduler residue) when the point was
    actually computed — cache hits have no telemetry to report.  All
    three stay ``None`` for default matching points, so legacy records
    and their serialized form are unchanged.

    ``incidents`` counts the recovery work this point's units needed —
    retries, timeouts, corrupt payloads, pool rebuilds — and is ``None``
    (and absent from the serialized form) for the overwhelmingly common
    incident-free point, so records only mention resilience when it
    actually fired.  Incidents are telemetry, not results: two runs of a
    point may differ in incidents while their numbers are identical.

    ``timings`` carries per-phase wall/CPU seconds for *computed* points
    (worker unit totals, funnel phases, parent-side cache/fold costs) and
    is ``None`` for cache hits.  Like incidents, timings are volatile
    telemetry: manifest-only, never part of stable digests or artifacts.
    """

    kind: str
    param: float
    requested: int
    effective: int
    adaptive: bool
    model: Optional[str] = None
    model_digest: Optional[str] = None
    criterion: Optional[str] = None
    criterion_digest: Optional[str] = None
    funnel: Optional[Dict[str, int]] = None
    incidents: Optional[Dict[str, int]] = None
    timings: Optional[Dict[str, float]] = None

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "param": self.param,
            "requested": self.requested,
            "effective": self.effective,
            "adaptive": self.adaptive,
            "model": self.model,
            "model_digest": self.model_digest,
        }
        if self.criterion is not None:
            out["criterion"] = self.criterion
            out["criterion_digest"] = self.criterion_digest
            if self.funnel is not None:
                out["funnel"] = dict(self.funnel)
        if self.incidents is not None:
            out["incidents"] = dict(self.incidents)
        if self.timings is not None:
            out["timings"] = dict(self.timings)
        return out


class SweepEngine:
    """Executes batches of Monte-Carlo points, optionally in parallel.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs in-process; results are
        bit-identical either way (see the module docstring's seed
        contract).  Ignored when ``executor`` is given.
    cache_dir:
        Directory for the on-disk point cache; ``None`` disables caching.
        Created on first use.  Safe to share between serial and parallel
        runs — entries are keyed per point.
    progress:
        Optional ``progress(done, total)`` callback, invoked after every
        completed (or cache-hit) point chunk.
    dtype:
        Uniform-draw dtype for the survival regime.  The ``float32``
        default halves RNG cost; use ``numpy.float64`` to reproduce the
        legacy ``YieldSimulator`` stream bit for bit.
    shard_runs:
        Within-point sharding threshold *and* batch size: any point whose
        budget exceeds this many runs is split into ``shard_runs``-sized
        batches with per-shard ``SeedSequence.spawn`` seeds and computed
        across the executor's capacity.  ``None`` (default) never shards
        within a point.  Sharded results are bit-identical whatever the
        executor, but use the spawned batch streams rather than the
        legacy single stream.
    executor:
        An explicit :class:`~repro.yieldsim.executors.Executor` backend.
        ``None`` (default) derives one from ``jobs`` per run —
        :class:`~repro.yieldsim.executors.SerialExecutor` for ``jobs=1``,
        :class:`~repro.yieldsim.executors.PoolExecutor` otherwise.  Pass
        an :class:`~repro.yieldsim.executors.InlineExecutor` to count
        compute units deterministically in tests.
    retry:
        A :class:`~repro.yieldsim.resilience.RetryPolicy` to apply to
        failed, hung and corrupt compute units (and broken process
        pools).  ``None`` (default) keeps the historical fail-fast
        behaviour.  Retries never change numbers — every unit is a pure
        function of its arguments — only whether a fault is survived.
    checkpoint:
        ``True`` journals each batched point's fold state to
        ``cache_dir`` after every in-order fold, so a preempted adaptive
        point resumes at the fold it reached with byte-identical output.
        Requires ``cache_dir``; flat points are already covered by the
        point cache itself.
    cache_store:
        A remote :class:`~repro.yieldsim.cachestore.CacheStore` (shared
        filesystem or HTTP) layered behind the local cache as a
        :class:`~repro.yieldsim.cachestore.TieredCache`: point reads
        fall through to it, point writes are uploaded put-if-absent, so
        a fleet of engines reuses each other's points.  Works with or
        without ``cache_dir`` (without one, the local tier is in-memory
        for the life of the engine).  A dead or corrupt remote degrades
        to misses plus counted incidents (:attr:`store_stats`), never an
        exception — and never changes any number.  Checkpoints stay
        local-only.
    tracer:
        An :class:`~repro.obs.trace.Tracer` to record the unit lifecycle
        (points, chunks/shards, retries, folds, cache traffic) as Chrome
        trace events.  ``None`` (default) records nothing and costs
        nothing.  Also assignable later via the :attr:`tracer` property.
        Tracing never changes any number.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        dtype: type = np.float32,
        shard_runs: Optional[int] = None,
        executor: Optional[Executor] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint: bool = False,
        cache_store: Optional[CacheStore] = None,
        tracer: Optional[Tracer] = None,
    ):
        if jobs < 1:
            raise SimulationError(f"jobs must be >= 1, got {jobs}")
        if checkpoint and cache_dir is None:
            raise SimulationError("checkpoint=True requires a cache_dir")
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.progress = progress
        self.dtype = dtype
        self.shard_runs = shard_runs
        self.executor = executor
        self.retry = retry
        self.checkpoint = checkpoint
        self.cache_store = cache_store
        #: incident counters shared by the cache, scheduler and serve layer
        self.resilience = ResilienceStats()
        #: tier traffic counters (all zero unless a cache_store is set)
        self.store_stats = StoreStats()
        store: Optional[CacheStore] = None
        if cache_store is not None:
            local: CacheStore = (
                LocalStore(cache_dir, stats=self.resilience)
                if cache_dir is not None
                else MemoryStore()
            )
            store = TieredCache(
                local,
                cache_store,
                stats=self.store_stats,
                resilience=self.resilience,
                validator=entry_validator,
            )
        #: the pure scheduling core (key derivation, cache, fold order)
        self.cache = PointCache(
            cache_dir, np.dtype(dtype).name, stats=self.resilience,
            store=store,
        )
        self.scheduler = PointScheduler(
            self.cache, dtype=dtype, shard_runs=shard_runs,
            retry=retry, checkpoint=checkpoint, stats=self.resilience,
            tracer=tracer,
        )
        #: merged screen statistics of everything this engine computed
        self.screen_stats = ScreenStats()
        #: cumulative requested/effective budget totals across run_points calls
        self.runs_requested = 0
        self.runs_effective = 0
        #: per-point budget accounting, appended in task order by run_points
        self.point_log: List[PointRecord] = []

    # -- telemetry --------------------------------------------------------------
    @property
    def tracer(self) -> Optional[Tracer]:
        """The span tracer armed on this engine (``None`` = off).

        Assignable at any time between runs: the serving layer arms a
        fresh tracer per traced request (under its compute lock) and
        disarms it afterwards.  Tracing is out-of-band — results are
        bit-identical with it on or off.
        """
        return self.scheduler.tracer

    @tracer.setter
    def tracer(self, tracer: Optional[Tracer]) -> None:
        self.scheduler.tracer = tracer

    # -- cache counters (facade over PointCache, for tests and reports) --------
    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.misses

    # -- request identity ------------------------------------------------------
    def point_key(self, task: EnginePoint) -> str:
        """The point-cache key of one task — its request identity.

        Two tasks with equal keys compute the identical result, whatever
        engine or executor runs them; the serving layer coalesces
        concurrent identical requests by this string before any compute
        is scheduled.
        """
        return self.scheduler.key_for(task)

    # -- execution -------------------------------------------------------------
    def run_points(
        self,
        tasks: Sequence[EnginePoint],
        on_fold: Optional[Callable[[int, int, int], None]] = None,
    ) -> List[YieldEstimate]:
        """Estimates for ``tasks``, in order; shards across the executor.

        Flat points run through the legacy chunked path (bit-identical to
        the pre-engine implementation); points with a stop rule or beyond
        ``shard_runs`` run through the batched path (see the module
        docstring).  Each estimate's ``trials`` is the point's *effective*
        budget — equal to ``spec.runs`` for flat points, possibly smaller
        for adaptive ones — and :attr:`point_log` records the
        requested-vs-effective pair for every task.  ``on_fold(i,
        successes, trials)`` observes every in-order fold of a batched
        point (cumulative values), which is what ``repro serve`` streams
        as per-fold NDJSON progress.
        """
        executor = self.executor if self.executor is not None else default_executor(self.jobs)
        crit_out: List[Optional[Dict[str, int]]] = [None] * len(tasks)
        incidents_out: List[Optional[Dict[str, int]]] = [None] * len(tasks)
        timings_out: List[Optional[Dict[str, float]]] = [None] * len(tasks)
        raw = self.scheduler.run(
            tasks,
            executor,
            progress=self.progress,
            on_fold=on_fold,
            stats=self.screen_stats,
            crit_out=crit_out,
            incidents_out=incidents_out,
            timings_out=timings_out,
        )
        estimates: List[YieldEstimate] = []
        for task, (got, trials), crit, incidents, timings in zip(
            tasks, raw, crit_out, incidents_out, timings_out
        ):
            self.runs_requested += task.spec.runs
            self.runs_effective += trials
            criterion = task.spec.criterion
            self.point_log.append(
                PointRecord(
                    kind=task.spec.kind,
                    param=task.spec.param,
                    requested=task.spec.runs,
                    effective=trials,
                    adaptive=task.stop is not None,
                    model=task.spec.model.name if task.spec.model else None,
                    model_digest=(
                        task.spec.model.digest() if task.spec.model else None
                    ),
                    criterion=criterion.spec() if criterion is not None else None,
                    criterion_digest=(
                        criterion.digest() if criterion is not None else None
                    ),
                    funnel=crit,
                    incidents=incidents,
                    timings=timings,
                )
            )
            estimates.append(YieldEstimate(successes=got, trials=trials))
        return estimates

    # -- conveniences ----------------------------------------------------------
    def survival_estimates(
        self,
        chip: Biochip,
        points: Sequence[Tuple[float, int]],
        runs: int,
        needed: Optional[Iterable[Hashable]] = None,
        stop: Optional[StopRule] = None,
        criterion: Optional[object] = None,
    ) -> List[YieldEstimate]:
        """Survival-regime estimates for ``(p, seed)`` pairs on one chip.

        ``criterion`` optionally replaces the matching success predicate
        with a functional one (see :mod:`repro.functional`); ``None``
        keeps the historical matching streams byte for byte.
        """
        needed_t = tuple(sorted(set(needed))) if needed is not None else None
        tasks = [
            EnginePoint(
                chip,
                PointSpec("survival", p, runs, seed, criterion=criterion),
                needed_t,
                stop,
            )
            for p, seed in points
        ]
        return self.run_points(tasks)

    def fixed_fault_estimates(
        self,
        chip: Biochip,
        points: Sequence[Tuple[int, int]],
        runs: int,
        needed: Optional[Iterable[Hashable]] = None,
        stop: Optional[StopRule] = None,
    ) -> List[YieldEstimate]:
        """Fixed-fault-count estimates for ``(m, seed)`` pairs on one chip."""
        needed_t = tuple(sorted(set(needed))) if needed is not None else None
        tasks = [
            EnginePoint(chip, PointSpec("fixed", m, runs, seed), needed_t, stop)
            for m, seed in points
        ]
        return self.run_points(tasks)
