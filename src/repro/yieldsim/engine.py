"""Parallel sweep execution engine: screen -> match, sharded, cached.

This module turns the per-point Monte-Carlo work of the yield sweeps
(Figures 7, 9, 10, 13 and Table 1's companions) into independent,
shardable units and runs them through the vectorized screening kernel.

The screen->match funnel
------------------------
Every point is simulated by :mod:`repro.yieldsim.kernel`: fault maps for
all runs are drawn in bulk with numpy, a funnel of exact vectorized
reductions (zero-fault / dead-end / forced-move / private-spare peeling /
Hall bounds) decides the overwhelming majority of runs, and only the
ambiguous residue falls back to per-run integer Kuhn matching.  The
funnel is *exact*, so the engine's numbers equal brute-force
``YieldSimulator`` matching run for run; with ``dtype=float64`` they are
bit-identical to it.

The seed-derivation contract
----------------------------
Each sweep point carries its own integer seed, derived by the *caller*
(``sweeps.py`` keeps the historical ``base_seed + counter`` scheme) and
consumed by a fresh ``numpy`` Generator for that point alone.  No point
ever reads another point's stream, so:

* a sweep is exactly reproducible from its base seed;
* any single point can be recomputed in isolation;
* serial (``jobs=1``) and parallel (``jobs>1``) execution are
  **bit-identical** — sharding only changes *where* a point is computed,
  never what it computes.

Parallelism and caching
-----------------------
``jobs > 1`` shards points across a ``ProcessPoolExecutor``; chips travel
to workers as compact payload dicts and each worker memoizes the derived
:class:`~repro.yieldsim.kernel.RepairStructure` by chip digest.  An
optional on-disk cache stores one small JSON file per point, keyed by a
SHA-256 digest of (chip cells, needed set, regime, parameter, runs, seed,
dtype, engine version — plus the batch size and stop-rule digest for
batched points), so repeated sweeps — e.g. re-rendering a figure at the
paper budget — cost nothing, and a flat-budget entry can never be served
to an adaptive request.

Within-point sharding and adaptive budgets
------------------------------------------
A point enters *batched* execution when it carries a
:class:`~repro.yieldsim.stats.StopRule` (adaptive budget) or when its
``runs`` exceed the engine's ``shard_runs`` (one huge point — a p-grid
corner at 10^6+ runs — split across the workers).  A batched point's
stream is defined by its batch plan alone: batch ``k`` draws from
``SeedSequence(seed, spawn_key=(k,))`` (the ``SeedSequence.spawn``
derivation, constructible per shard in isolation), so the point's result
is a pure function of (spec, rule/batch size) — *where* the batches run
(in-process, or sharded across the pool) can never change a number.
Under a stop rule, batches are folded strictly in batch order and the
rule is checked after each fold; parallel execution merely speculates on
later batches and discards them past the stop point, so the effective
budget is deterministic given the seed.  An adaptive point that never
meets its target spends exactly its full plan — bit-identical to the
fixed-budget batched run of the same point.

Flat, unsharded points (the default) keep the legacy single-stream draw
and remain bit-identical to the pre-engine implementation.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.chip.biochip import Biochip
from repro.chip.cell import Cell, CellRole
from repro.errors import SimulationError
from repro.geometry.hex import Hex
from repro.geometry.square import Square
from repro.yieldsim.kernel import (
    PointSpec,
    RepairStructure,
    ScreenStats,
    model_successes,
    point_entropy,
    point_model,
    shard_plan,
    shard_seed,
    simulate_points,
)
from repro.yieldsim.stats import StopRule, YieldEstimate

__all__ = [
    "SweepEngine",
    "EnginePoint",
    "PointRecord",
    "chip_payload",
    "payload_digest",
]

#: Bump when the kernel/sampling semantics change, to invalidate caches.
ENGINE_VERSION = 1

#: Maximum points per shard: small enough to load-balance a grid across
#: workers, large enough to amortize per-chunk pickling.
_CHUNK_POINTS = 4


# -- chip payloads ------------------------------------------------------------

def chip_payload(
    chip: Biochip, needed: Optional[Iterable[Hashable]] = None
) -> Dict[str, object]:
    """A minimal, canonical, picklable description of a simulation target.

    Only what the repairability question depends on is included — cell
    coordinates, roles and the needed set.  Health, labels and the chip
    name are deliberately excluded so cosmetic differences cannot split
    the cache.
    """
    kind = None
    cells: List[Tuple[int, int, int]] = []
    for cell in chip:
        coord = cell.coord
        if isinstance(coord, Hex):
            k, a, b = "hex", coord.q, coord.r
        elif isinstance(coord, Square):
            k, a, b = "square", coord.x, coord.y
        else:
            raise SimulationError(
                f"cannot serialize coordinate of type {type(coord).__name__}"
            )
        if kind is None:
            kind = k
        elif kind != k:
            raise SimulationError("chip mixes coordinate systems")
        cells.append((a, b, 1 if cell.is_spare else 0))
    payload: Dict[str, object] = {"coords": kind, "cells": cells}
    if needed is not None:
        needed_pairs = []
        for coord in sorted(set(needed)):
            if isinstance(coord, (Hex, Square)):
                needed_pairs.append(
                    (coord.q, coord.r) if isinstance(coord, Hex) else (coord.x, coord.y)
                )
            else:
                raise SimulationError(
                    f"cannot serialize needed coordinate {coord!r}"
                )
        payload["needed"] = needed_pairs
    return payload


def payload_digest(payload: Dict[str, object]) -> str:
    """Stable SHA-256 digest of a chip payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=list)
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def _structure_from_payload(payload: Dict[str, object]) -> RepairStructure:
    """Rebuild the chip from its payload and derive the repair structure."""
    kind = payload["coords"]
    make = Hex if kind == "hex" else Square
    cells = [
        Cell(make(a, b), CellRole.SPARE if spare else CellRole.PRIMARY)
        for a, b, spare in payload["cells"]
    ]
    chip = Biochip(cells, name="engine-target")
    needed = payload.get("needed")
    if needed is not None:
        needed = [make(a, b) for a, b in needed]
    return RepairStructure(chip, needed=needed)


# -- worker-side execution ----------------------------------------------------

#: Per-process memo of chip digest -> RepairStructure, so a sweep that
#: shards many points of one chip builds the structure once per worker.
_STRUCTURES: Dict[str, RepairStructure] = {}


def _structure_for(digest: str, payload: Dict[str, object]) -> RepairStructure:
    struct = _STRUCTURES.get(digest)
    if struct is None:
        struct = _structure_from_payload(payload)
        _STRUCTURES[digest] = struct
    return struct


def _compute_batch(
    digest: str,
    payload: Dict[str, object],
    points: Sequence[PointSpec],
    dtype_name: str,
) -> Tuple[List[int], Dict[str, int]]:
    """Compute one shard of points (runs in the worker process)."""
    struct = _structure_for(digest, payload)
    successes, stats = simulate_points(struct, points, dtype=np.dtype(dtype_name).type)
    return successes, stats.as_dict()


def _compute_shard(
    digest: str,
    payload: Dict[str, object],
    spec: PointSpec,
    size: int,
    entropy: int,
    index: int,
    dtype_name: str,
) -> Tuple[int, Dict[str, int]]:
    """Compute one within-point shard (runs in the worker process).

    The shard's stream is fully determined by ``(entropy, index)`` via
    :func:`~repro.yieldsim.kernel.shard_seed`, so any worker — or the
    calling process — computes the identical batch.  The point's defect
    model (explicit, or the legacy-kind alias) travels inside ``spec``.
    """
    struct = _structure_for(digest, payload)
    rng = np.random.default_rng(shard_seed(entropy, index))
    got, stats = model_successes(
        struct, point_model(spec), size, seed=rng, dtype=np.dtype(dtype_name).type
    )
    return got, stats.as_dict()


# -- the engine ---------------------------------------------------------------

@dataclass(frozen=True)
class EnginePoint:
    """One sweep point: a chip, an optional needed set, and a PointSpec.

    ``stop`` attaches an adaptive sequential budget: the point runs in
    batches of ``stop.batch_runs`` and halts once its Wilson interval is
    as narrow as the rule demands, with ``spec.runs`` as the flat ceiling.
    """

    chip: Biochip
    spec: PointSpec
    needed: Optional[Tuple[Hashable, ...]] = None
    stop: Optional[StopRule] = None


@dataclass(frozen=True)
class PointRecord:
    """Requested-vs-effective budget accounting for one executed point.

    ``model``/``model_digest`` name the explicit defect model of a
    ``"model"``-kind point (None for the legacy i.i.d./fixed regimes), so
    provenance consumers can attribute every Monte-Carlo run to the
    distribution that produced it.
    """

    kind: str
    param: float
    requested: int
    effective: int
    adaptive: bool
    model: Optional[str] = None
    model_digest: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "param": self.param,
            "requested": self.requested,
            "effective": self.effective,
            "adaptive": self.adaptive,
            "model": self.model,
            "model_digest": self.model_digest,
        }


class SweepEngine:
    """Executes batches of Monte-Carlo points, optionally in parallel.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs in-process; results are
        bit-identical either way (see the module docstring's seed
        contract).
    cache_dir:
        Directory for the on-disk point cache; ``None`` disables caching.
        Created on first use.  Safe to share between serial and parallel
        runs — entries are keyed per point.
    progress:
        Optional ``progress(done, total)`` callback, invoked after every
        completed (or cache-hit) point chunk.
    dtype:
        Uniform-draw dtype for the survival regime.  The ``float32``
        default halves RNG cost; use ``numpy.float64`` to reproduce the
        legacy ``YieldSimulator`` stream bit for bit.
    shard_runs:
        Within-point sharding threshold *and* batch size: any point whose
        budget exceeds this many runs is split into ``shard_runs``-sized
        batches with per-shard ``SeedSequence.spawn`` seeds and (with
        ``jobs > 1``) computed across the worker pool.  ``None`` (default)
        never shards within a point.  Sharded results are bit-identical
        whether the batches run serially or in parallel, but use the
        spawned batch streams rather than the legacy single stream.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        dtype: type = np.float32,
        shard_runs: Optional[int] = None,
    ):
        if jobs < 1:
            raise SimulationError(f"jobs must be >= 1, got {jobs}")
        if cache_dir is not None and os.path.exists(cache_dir) and not os.path.isdir(cache_dir):
            raise SimulationError(
                f"cache path {cache_dir!r} exists and is not a directory"
            )
        if shard_runs is not None and shard_runs < 1:
            raise SimulationError(f"shard_runs must be >= 1, got {shard_runs}")
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.progress = progress
        self.dtype = dtype
        self.shard_runs = shard_runs
        #: cumulative cache counters (for tests and reports)
        self.cache_hits = 0
        self.cache_misses = 0
        #: merged screen statistics of everything this engine computed
        self.screen_stats = ScreenStats()
        #: cumulative requested/effective budget totals across run_points calls
        self.runs_requested = 0
        self.runs_effective = 0
        #: per-point budget accounting, appended in task order by run_points
        self.point_log: List[PointRecord] = []

    # -- execution modes -------------------------------------------------------
    def _task_batch(self, task: EnginePoint) -> Optional[int]:
        """Batch size for batched (sharded/adaptive) execution, else None."""
        if task.stop is not None:
            return task.stop.batch_runs
        if self.shard_runs is not None and task.spec.runs > self.shard_runs:
            return self.shard_runs
        return None

    # -- cache ----------------------------------------------------------------
    def _point_key(
        self,
        digest: str,
        spec: PointSpec,
        stop: Optional[StopRule] = None,
        batch: Optional[int] = None,
    ) -> str:
        ident: Dict[str, object] = {
            "chip": digest,
            "kind": spec.kind,
            "param": spec.param,
            "runs": spec.runs,
            "seed": spec.seed,
            "dtype": np.dtype(self.dtype).name,
            "version": ENGINE_VERSION,
        }
        if spec.model is not None:
            # The model's content digest keys the distribution: two models
            # at equal severity (or a model point and a legacy point at
            # the same p) can never collide in the cache.
            ident["defect_model"] = spec.model.digest()
        if batch is not None:
            # Batched points live under a distinct key family: the batch
            # size defines the RNG stream and the stop-rule digest defines
            # the effective budget, so a flat-budget entry is never served
            # to an adaptive request (or vice versa).
            ident["mode"] = "batched"
            ident["batch"] = batch
            ident["stop"] = stop.digest() if stop is not None else None
        blob = json.dumps(ident, sort_keys=True)
        return hashlib.sha256(blob.encode("ascii")).hexdigest()

    def _cache_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _cache_load(
        self, key: str, spec: PointSpec, batched: bool = False
    ) -> Optional[Tuple[int, int]]:
        """Cached ``(successes, effective trials)`` for a point, if valid."""
        if self.cache_dir is None:
            return None
        if batched and spec.seed is None:
            # A seedless batched point has fresh entropy every time; a
            # cache entry for it would be a false hit.
            return None
        try:
            with open(self._cache_path(key), "r", encoding="utf-8") as fh:
                data = json.load(fh)
            successes = data["successes"]
            trials = data["trials"]
            if batched:
                if data["requested"] != spec.runs or not 0 <= successes <= trials <= spec.runs:
                    return None
            elif trials != spec.runs or not 0 <= successes <= spec.runs:
                return None
            return int(successes), int(trials)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _cache_store(
        self,
        key: str,
        spec: PointSpec,
        successes: int,
        trials: int,
        batched: bool = False,
        stop: Optional[StopRule] = None,
    ) -> None:
        if self.cache_dir is None or (batched and spec.seed is None):
            return
        entry: Dict[str, object] = {
            "successes": successes,
            "trials": trials,
            "kind": spec.kind,
            "param": spec.param,
            "seed": spec.seed,
            "version": ENGINE_VERSION,
        }
        if batched:
            entry["requested"] = spec.runs
            entry["stop"] = stop.digest() if stop is not None else None
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._cache_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- execution -------------------------------------------------------------
    def run_points(self, tasks: Sequence[EnginePoint]) -> List[YieldEstimate]:
        """Estimates for ``tasks``, in order; shards across jobs if > 1.

        Flat points run through the legacy chunked path (bit-identical to
        the pre-engine implementation); points with a stop rule or beyond
        ``shard_runs`` run through the batched path (see the module
        docstring).  Each estimate's ``trials`` is the point's *effective*
        budget — equal to ``spec.runs`` for flat points, possibly smaller
        for adaptive ones — and :attr:`point_log` records the
        requested-vs-effective pair for every task.
        """
        n = len(tasks)
        results: List[Optional[Tuple[int, int]]] = [None] * n

        # Canonical payload/digest per distinct chip object (and needed set).
        seen: Dict[Tuple[int, Optional[Tuple[Hashable, ...]]], str] = {}
        payload_by_digest: Dict[str, Dict[str, object]] = {}
        digests: List[str] = []
        for task in tasks:
            marker = (id(task.chip), task.needed)
            digest = seen.get(marker)
            if digest is None:
                payload = chip_payload(task.chip, task.needed)
                digest = payload_digest(payload)
                seen[marker] = digest
                payload_by_digest[digest] = payload
            digests.append(digest)

        # Cache pass.
        batch_of = [self._task_batch(task) for task in tasks]
        keys = [
            self._point_key(digests[i], task.spec, stop=task.stop, batch=batch_of[i])
            for i, task in enumerate(tasks)
        ]
        pending: List[int] = []
        pending_batched: List[int] = []
        done = 0
        for i, task in enumerate(tasks):
            task.spec.validate(len(task.chip))
            cached = self._cache_load(keys[i], task.spec, batched=batch_of[i] is not None)
            if cached is not None:
                results[i] = cached
                self.cache_hits += 1
                done += 1
            else:
                (pending if batch_of[i] is None else pending_batched).append(i)
                if self.cache_dir is not None:
                    self.cache_misses += 1
        if done and self.progress is not None:
            self.progress(done, n)

        # Group flat pending points into per-chip chunks (the shard unit).
        # The grouping depends only on the task list, never on jobs, so
        # serial and parallel runs compute identical chunks.
        chunks: List[Tuple[str, List[int]]] = []
        current_digest: Optional[str] = None
        for i in pending:
            if digests[i] != current_digest or len(chunks[-1][1]) >= _CHUNK_POINTS:
                chunks.append((digests[i], []))
                current_digest = digests[i]
            chunks[-1][1].append(i)

        def record(chunk_indices: List[int], successes: List[int], stats: Dict[str, int]) -> None:
            nonlocal done
            for idx, got in zip(chunk_indices, successes):
                results[idx] = (got, tasks[idx].spec.runs)
                self._cache_store(keys[idx], tasks[idx].spec, got, tasks[idx].spec.runs)
            self.screen_stats.merge(ScreenStats.from_dict(stats))
            done += len(chunk_indices)
            if self.progress is not None:
                self.progress(done, n)

        dtype_name = np.dtype(self.dtype).name
        plans = {
            i: shard_plan(
                tasks[i].stop.cap(tasks[i].spec.runs) if tasks[i].stop else tasks[i].spec.runs,
                batch_of[i],
            )
            for i in pending_batched
        }
        shard_units = sum(len(plan) for plan in plans.values())
        pool: Optional[ProcessPoolExecutor] = None
        try:
            if self.jobs > 1 and (len(chunks) > 1 or shard_units > 1):
                pool = ProcessPoolExecutor(
                    max_workers=min(self.jobs, max(len(chunks), shard_units))
                )

            if pool is None or len(chunks) <= 1:
                for digest, idxs in chunks:
                    successes, stats = _compute_batch(
                        digest, payload_by_digest[digest],
                        [tasks[i].spec for i in idxs], dtype_name,
                    )
                    record(idxs, successes, stats)
            else:
                futures = {
                    pool.submit(
                        _compute_batch, digest, payload_by_digest[digest],
                        [tasks[i].spec for i in idxs], dtype_name,
                    ): idxs
                    for digest, idxs in chunks
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for fut in finished:
                        successes, stats = fut.result()
                        record(futures[fut], successes, stats)

            def on_point(i: int, got: int, trials: int) -> None:
                nonlocal done
                results[i] = (got, trials)
                self._cache_store(
                    keys[i], tasks[i].spec, got, trials,
                    batched=True, stop=tasks[i].stop,
                )
                done += 1
                if self.progress is not None:
                    self.progress(done, n)

            if pending_batched:
                self._run_batched_points(
                    tasks, pending_batched, plans, digests, payload_by_digest,
                    pool, on_point,
                )
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

        estimates: List[YieldEstimate] = []
        for i, task in enumerate(tasks):
            got, trials = results[i]
            self.runs_requested += task.spec.runs
            self.runs_effective += trials
            self.point_log.append(
                PointRecord(
                    kind=task.spec.kind,
                    param=task.spec.param,
                    requested=task.spec.runs,
                    effective=trials,
                    adaptive=task.stop is not None,
                    model=task.spec.model.name if task.spec.model else None,
                    model_digest=(
                        task.spec.model.digest() if task.spec.model else None
                    ),
                )
            )
            estimates.append(YieldEstimate(successes=got, trials=trials))
        return estimates

    def _run_batched_points(
        self,
        tasks: Sequence[EnginePoint],
        indices: Sequence[int],
        plans: Dict[int, Tuple[int, ...]],
        digests: Sequence[str],
        payload_by_digest: Dict[str, Dict[str, object]],
        pool: Optional[ProcessPoolExecutor],
        on_point: Callable[[int, int, int], None],
    ) -> None:
        """Run the batched points; calls ``on_point(i, successes, trials)``
        as each completes.

        Each point's batches are folded strictly in batch order and its
        stop rule (if any) is checked after each fold, so every point's
        result — successes *and* effective budget — is identical whether
        its batches run here or speculatively across the pool.  The pool
        schedule interleaves batches of *different* points (point-major
        order), so an adaptive sweep keeps every worker busy instead of
        draining one point at a time; batches that complete beyond a stop
        point are discarded, keeping numbers and screen stats equal to
        the serial fold.
        """
        dtype_name = np.dtype(self.dtype).name
        entropies = {i: point_entropy(tasks[i].spec.seed) for i in indices}

        if pool is None:
            for i in indices:
                spec, rule = tasks[i].spec, tasks[i].stop
                successes = 0
                trials = 0
                for k, size in enumerate(plans[i]):
                    got, stats = _compute_shard(
                        digests[i], payload_by_digest[digests[i]],
                        spec, size, entropies[i], k, dtype_name,
                    )
                    self.screen_stats.merge(ScreenStats.from_dict(stats))
                    successes += got
                    trials += size
                    if rule is not None and rule.should_stop(successes, trials):
                        break
                on_point(i, successes, trials)
            return

        # Per-point fold state; a point is live until it stops or folds
        # its whole plan.
        next_fold = {i: 0 for i in indices}
        successes = {i: 0 for i in indices}
        trials = {i: 0 for i in indices}
        complete: set = set()

        def unit_stream():
            for i in indices:
                for k in range(len(plans[i])):
                    yield i, k

        units = unit_stream()
        futures: Dict[Tuple[int, int], object] = {}
        ready: Dict[Tuple[int, int], Tuple[int, Dict[str, int]]] = {}

        def submit_up_to_jobs() -> None:
            while len(futures) < self.jobs:
                for i, k in units:
                    if i in complete:
                        continue  # point already decided; skip its tail
                    spec = tasks[i].spec
                    futures[(i, k)] = pool.submit(
                        _compute_shard, digests[i], payload_by_digest[digests[i]],
                        spec, plans[i][k],
                        entropies[i], k, dtype_name,
                    )
                    break
                else:
                    return  # no units left to submit

        while len(complete) < len(indices):
            submit_up_to_jobs()
            finished, _ = wait(set(futures.values()), return_when=FIRST_COMPLETED)
            for unit in [u for u, fut in list(futures.items()) if fut in finished]:
                ready[unit] = futures.pop(unit).result()
            for i in indices:
                if i in complete:
                    continue
                rule = tasks[i].stop
                while (i, next_fold[i]) in ready and i not in complete:
                    got, stats = ready.pop((i, next_fold[i]))
                    self.screen_stats.merge(ScreenStats.from_dict(stats))
                    successes[i] += got
                    trials[i] += plans[i][next_fold[i]]
                    next_fold[i] += 1
                    stopped = rule is not None and rule.should_stop(
                        successes[i], trials[i]
                    )
                    if stopped or next_fold[i] == len(plans[i]):
                        complete.add(i)
                        on_point(i, successes[i], trials[i])
            # Drop speculative results (and cancel queued batches) of
            # points that have since completed.
            for unit in [u for u in ready if u[0] in complete]:
                del ready[unit]
            for unit in [u for u, fut in list(futures.items()) if u[0] in complete]:
                futures[unit].cancel()
                del futures[unit]

    # -- conveniences ----------------------------------------------------------
    def survival_estimates(
        self,
        chip: Biochip,
        points: Sequence[Tuple[float, int]],
        runs: int,
        needed: Optional[Iterable[Hashable]] = None,
        stop: Optional[StopRule] = None,
    ) -> List[YieldEstimate]:
        """Survival-regime estimates for ``(p, seed)`` pairs on one chip."""
        needed_t = tuple(sorted(set(needed))) if needed is not None else None
        tasks = [
            EnginePoint(chip, PointSpec("survival", p, runs, seed), needed_t, stop)
            for p, seed in points
        ]
        return self.run_points(tasks)

    def fixed_fault_estimates(
        self,
        chip: Biochip,
        points: Sequence[Tuple[int, int]],
        runs: int,
        needed: Optional[Iterable[Hashable]] = None,
        stop: Optional[StopRule] = None,
    ) -> List[YieldEstimate]:
        """Fixed-fault-count estimates for ``(m, seed)`` pairs on one chip."""
        needed_t = tuple(sorted(set(needed))) if needed is not None else None
        tasks = [
            EnginePoint(chip, PointSpec("fixed", m, runs, seed), needed_t, stop)
            for m, seed in points
        ]
        return self.run_points(tasks)
