"""Exact yield by exhaustive enumeration (small arrays only).

For arrays up to ~20 cells the yield of a defect-tolerant design can be
computed *exactly*: enumerate every fault subset, weight it by
``p^(alive) * q^(dead)``, and test repairability with the same maximum
matching the Monte-Carlo engine uses.  This is exponential and exists for
one purpose — ground truth.  The test suite uses it to validate both the
Monte-Carlo estimator and the DTMB(1,6) cluster formula on real arrays.

Two optimizations keep 20 cells tractable (2^20 = 1M subsets):

* faults on *spare* cells only matter through the spare's availability, so
  subsets are enumerated over the whole array but repairability is
  evaluated on the tiny induced bipartite graph;
* subsets are walked in Gray-code order so the faulty-set updates are
  incremental (one cell flips per step).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.chip.biochip import Biochip
from repro.errors import SimulationError

__all__ = ["exact_yield", "MAX_EXACT_CELLS"]

#: Hard cap: 2^22 subsets is a few seconds; beyond that use Monte-Carlo.
MAX_EXACT_CELLS = 22


def _repairable(
    faulty: Set[int],
    needed_positions: Dict[int, int],
    adjacency: Sequence[Tuple[int, ...]],
) -> bool:
    """Kuhn matching feasibility on integer cell indices."""
    match_right: Dict[int, int] = {}

    def try_augment(j: int, visited: Set[int]) -> bool:
        for s in adjacency[j]:
            if s in faulty or s in visited:
                continue
            visited.add(s)
            owner = match_right.get(s)
            if owner is None or try_augment(owner, visited):
                match_right[s] = j
                return True
        return False

    for cell in faulty:
        j = needed_positions.get(cell)
        if j is None:
            continue
        if not try_augment(j, set()):
            return False
    return True


def exact_yield(
    chip: Biochip,
    p: float,
    needed: Optional[Iterable[Hashable]] = None,
) -> float:
    """The exact yield of ``chip`` at per-cell survival probability ``p``.

    Enumerates all ``2^len(chip)`` fault subsets; raises for arrays larger
    than :data:`MAX_EXACT_CELLS`.  Semantics identical to
    :meth:`~repro.yieldsim.montecarlo.YieldSimulator.run_survival`: the
    chip is good iff every faulty needed primary can be matched to an
    adjacent fault-free spare.
    """
    n = len(chip)
    if n > MAX_EXACT_CELLS:
        raise SimulationError(
            f"exact enumeration capped at {MAX_EXACT_CELLS} cells, "
            f"chip has {n}; use Monte-Carlo"
        )
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"survival probability must be in [0, 1], got {p}")

    coords = chip.coords
    index = {c: i for i, c in enumerate(coords)}
    if needed is None:
        needed_coords = [c.coord for c in chip.primaries()]
    else:
        needed_coords = sorted(set(needed))
        for coord in needed_coords:
            if coord not in chip or not chip[coord].is_primary:
                raise SimulationError(
                    f"needed cell {coord} is not a primary cell of the chip"
                )
    needed_positions = {index[c]: j for j, c in enumerate(needed_coords)}
    adjacency: List[Tuple[int, ...]] = [
        tuple(index[s.coord] for s in chip.adjacent_spares(c))
        for c in needed_coords
    ]

    q = 1.0 - p
    total = 0.0
    # Gray-code walk over all subsets: subset(g) where g = i ^ (i >> 1);
    # consecutive subsets differ in exactly one bit.
    faulty: Set[int] = set()
    weight_faulty = 0  # |faulty| tracked incrementally
    # Precompute p^a * q^b table to avoid pow in the hot loop.
    pow_p = [p**k for k in range(n + 1)]
    pow_q = [q**k for k in range(n + 1)]

    # Subset 0: no faults — always good.
    total += pow_p[n]
    gray = 0
    for i in range(1, 1 << n):
        new_gray = i ^ (i >> 1)
        changed_bit = (gray ^ new_gray).bit_length() - 1
        gray = new_gray
        if changed_bit in faulty:
            faulty.discard(changed_bit)
            weight_faulty -= 1
        else:
            faulty.add(changed_bit)
            weight_faulty += 1
        weight = pow_p[n - weight_faulty] * pow_q[weight_faulty]
        if weight == 0.0:
            continue
        if _repairable(faulty, needed_positions, adjacency):
            total += weight
    return total
