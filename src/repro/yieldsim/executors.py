"""Pluggable execution backends for the sweep scheduler.

The :class:`~repro.yieldsim.scheduler.PointScheduler` decides *what* to
compute (cache keys, chunking, shard plans, fold order, stop-rule
speculation); an :class:`Executor` decides *where* each compute unit runs.
The scheduler drives every backend through the same four-call protocol —
``start``/``submit``/``wait_any``/``shutdown`` — and folds results in a
fixed order, so the engine's bit-identity contract (serial == parallel ==
sharded) holds for any backend by construction: an executor can change
wall-clock time and speculation, never a number.

Backends
--------
:class:`SerialExecutor`
    Runs every unit inline at ``submit`` time, one at a time.  The
    scheduler degenerates to a strict in-order fold — the reference
    semantics every other backend must reproduce.
:class:`PoolExecutor`
    ``concurrent.futures.ProcessPoolExecutor``-backed.  The pool is
    created lazily at ``start`` (and only when there is more than one
    unit to run), sized ``min(jobs, units)``; with one unit it behaves
    exactly like :class:`SerialExecutor`.
:class:`InlineExecutor`
    A test double: immediate in-process execution like
    :class:`SerialExecutor`, but with a configurable ``capacity`` so the
    scheduler exercises its speculative submit/discard logic
    deterministically without processes, and with cumulative
    ``submitted``/``completed``/``cancelled`` counters so tests can
    assert exactly how many compute units a request cost.

Executors are reusable: ``start``/``shutdown`` bracket one scheduler run,
and a fresh run may follow (``PoolExecutor`` spawns a fresh pool each
time; the inline backends keep their counters across runs).
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Optional, Protocol, Set, runtime_checkable

from repro.errors import SimulationError

__all__ = [
    "Executor",
    "UnitFuture",
    "ImmediateFuture",
    "SerialExecutor",
    "InlineExecutor",
    "PoolExecutor",
    "default_executor",
]


@runtime_checkable
class UnitFuture(Protocol):
    """What the scheduler needs from a submitted compute unit."""

    def result(self) -> Any: ...

    def cancel(self) -> bool: ...

    def done(self) -> bool: ...


class ImmediateFuture:
    """A unit future whose work already ran at ``submit`` time."""

    __slots__ = ("_result",)

    def __init__(self, result: Any):
        self._result = result

    def result(self) -> Any:
        return self._result

    def cancel(self) -> bool:
        return False

    def done(self) -> bool:
        return True


@runtime_checkable
class Executor(Protocol):
    """Where the scheduler's compute units run.

    ``capacity`` is the number of units worth keeping in flight: the
    scheduler submits up to ``capacity`` units before waiting, which is
    also how far it speculates past a possible adaptive stop point.
    """

    name: str

    @property
    def capacity(self) -> int: ...

    def start(self, units_hint: int) -> None:
        """Begin one scheduler run expected to hold ``units_hint`` units."""

    def submit(self, fn: Callable[..., Any], *args: Any) -> UnitFuture: ...

    def wait_any(
        self, futures: Set[UnitFuture], timeout: Optional[float] = None
    ) -> Set[UnitFuture]:
        """Block until at least one of ``futures`` is done; return those.

        With a ``timeout`` (seconds), may return an empty set once it
        elapses — how the retry layer notices hung units.
        """

    def shutdown(self) -> None:
        """End the current run, releasing any workers."""


class SerialExecutor:
    """Immediate in-process execution, one unit at a time."""

    name = "serial"

    @property
    def capacity(self) -> int:
        return 1

    def start(self, units_hint: int) -> None:
        pass

    def submit(self, fn: Callable[..., Any], *args: Any) -> ImmediateFuture:
        return ImmediateFuture(fn(*args))

    def wait_any(
        self, futures: Set[UnitFuture], timeout: Optional[float] = None
    ) -> Set[UnitFuture]:
        return set(futures)

    def shutdown(self) -> None:
        pass


class InlineExecutor:
    """In-process execution with pool-like speculation, for tests.

    With ``capacity=1`` this is :class:`SerialExecutor` plus counters;
    with ``capacity>1`` the scheduler speculates exactly as it would over
    a process pool — submitting (and computing) units past a potential
    stop point, then discarding them — but deterministically and in one
    process, so the speculative path is testable without workers.
    """

    name = "inline"

    def __init__(self, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        #: cumulative units actually computed via submit()
        self.submitted = 0
        #: cumulative results consumed by the scheduler
        self.completed = 0
        #: cumulative cancel() calls (speculative units discarded unqueued)
        self.cancelled = 0
        #: start()/shutdown() brackets, for lifecycle tests
        self.runs_started = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def start(self, units_hint: int) -> None:
        self.runs_started += 1

    def submit(self, fn: Callable[..., Any], *args: Any) -> ImmediateFuture:
        self.submitted += 1
        return ImmediateFuture(fn(*args))

    def wait_any(
        self, futures: Set[UnitFuture], timeout: Optional[float] = None
    ) -> Set[UnitFuture]:
        done = set(futures)
        self.completed += len(done)
        return done

    def shutdown(self) -> None:
        pass


class PoolExecutor:
    """``ProcessPoolExecutor``-backed execution across worker processes.

    The pool is created per run at :meth:`start`, and only when the run
    holds more than one unit — a single-unit run (or ``jobs=1``) executes
    inline, exactly like :class:`SerialExecutor`, so tiny requests never
    pay process spin-up.

    A broken pool (a worker died hard enough to poison it —
    ``BrokenProcessPool``) is recoverable: :meth:`rebuild` discards the
    poisoned pool and spawns a fresh one at the same size, and the retry
    layer resubmits whatever was in flight.  ``rebuilds`` counts how many
    times that happened over the executor's lifetime.
    """

    name = "pool"

    def __init__(self, jobs: int):
        if jobs < 1:
            raise SimulationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_size = 0
        #: lifetime count of broken pools replaced via rebuild()
        self.rebuilds = 0

    @property
    def capacity(self) -> int:
        return self.jobs if self._pool is not None else 1

    def start(self, units_hint: int) -> None:
        if self.jobs > 1 and units_hint > 1:
            self._pool_size = min(self.jobs, units_hint)
            self._pool = ProcessPoolExecutor(max_workers=self._pool_size)

    def submit(self, fn: Callable[..., Any], *args: Any) -> UnitFuture:
        if self._pool is None:
            return ImmediateFuture(fn(*args))
        return self._pool.submit(fn, *args)

    def wait_any(
        self, futures: Set[UnitFuture], timeout: Optional[float] = None
    ) -> Set[UnitFuture]:
        done = {fut for fut in futures if isinstance(fut, ImmediateFuture)}
        if done:
            return done
        finished, _ = wait(futures, timeout=timeout, return_when=FIRST_COMPLETED)
        return set(finished)

    def rebuild(self) -> None:
        """Replace a poisoned pool with a fresh one at the same size."""
        if self._pool is None:
            raise SimulationError("no process pool to rebuild")
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ProcessPoolExecutor(max_workers=self._pool_size)
        self.rebuilds += 1

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def default_executor(jobs: int = 1) -> Executor:
    """The backend ``SweepEngine(jobs=...)`` historically implies."""
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1, got {jobs}")
    return SerialExecutor() if jobs == 1 else PoolExecutor(jobs)
