"""Content-addressed cache transport: the stores behind the point cache.

PR 8 made every compute unit preemption-proof; this module makes the
*results* shareable.  A :class:`CacheStore` is a tiny object protocol —
``get``/``put``/``exists``/``list_keys`` over opaque byte payloads keyed
by hex digests — with one invariant across every implementation: **a
reader sees either nothing or a complete, digest-verified payload, never
a torn or silently corrupted one.**  Four stores implement it:

:class:`LocalStore`
    Today's on-disk point-cache layout (``<dir>/<key>.json``), extracted
    verbatim.  Entries are *self-verifying* canonical JSON (an embedded
    ``digest`` field over the rest of the entry), so files written
    through a :class:`LocalStore` are byte-identical to what
    :class:`~repro.yieldsim.scheduler.PointCache` always wrote, and every
    legacy cache directory reads back unchanged.  Corrupt files are
    quarantined (renamed ``*.corrupt``, counted) exactly as before.
:class:`SharedFSStore`
    A content-addressed ``objects/<key[:2]>/<key>`` tree on a shared
    filesystem.  Payloads are wrapped in a one-line envelope carrying
    their SHA-256, writes are atomic put-if-absent (tmp file +
    ``os.link``), so any number of concurrent writers converge on
    exactly one object per key and readers never observe a partial
    write.
:class:`HTTPStore`
    A stdlib ``urllib`` client speaking GET/PUT/HEAD against the
    ``/cache/objects/{key}`` endpoint ``repro cache-serve`` (or any
    ``repro serve`` with ``--cache-objects``) mounts.  Transfers carry
    the payload digest in an ``X-Repro-Digest`` header; the server
    refuses uploads whose body does not hash to the declared digest, and
    the client re-verifies downloads, so a truncated or garbled transfer
    can never be mistaken for an object.
:class:`MemoryStore`
    A dict.  The local tier when no cache directory is configured, and
    the workhorse of the test suite.

:class:`TieredCache` composes a local tier in front of a remote store:
reads go through the local tier, fall back to the remote, and write the
remote's answer back locally; writes land in both.  Every remote failure
— connection refused, timeout, HTTP 5xx, a corrupt payload — degrades to
a **miss plus a logged incident** (``StoreStats.remote_errors``, folded
into :class:`~repro.yieldsim.resilience.ResilienceStats` and the manifest
provenance), never an exception: a dead remote costs recomputation, not
the run.

:class:`FaultInjectingStore` is the chaos harness for all of the above —
a deterministic wrapper injecting failed calls, garbage bodies, truncated
uploads and slow reads, mirroring
:class:`~repro.yieldsim.resilience.FaultInjectingExecutor`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable

from repro.errors import StoreError
from repro.obs.events import get_logger, log_event
from repro.yieldsim.resilience import ResilienceStats

__all__ = [
    "CacheStore",
    "FaultInjectingStore",
    "HTTPStore",
    "LocalStore",
    "MemoryStore",
    "SharedFSStore",
    "StoreStats",
    "TieredCache",
    "content_digest",
    "decode_entry",
    "encode_entry",
    "entry_digest",
    "store_from_url",
]

log = get_logger("cachestore")

#: Envelope magic for content-addressed objects: format name + version.
ENVELOPE_MAGIC = b"repro-cas/1 "

#: Keys are hex digests (the point cache uses full SHA-256; bundle
#: indexes and tests may use shorter prefixes).
_KEY_ALPHABET = frozenset("0123456789abcdef")
_KEY_MIN, _KEY_MAX = 6, 128


def valid_key(key: str) -> bool:
    """True iff ``key`` is plain lowercase hex of sane length.

    This is the only shape a store accepts — it is what makes a key safe
    to splice into a filesystem path or a URL (no separators, no dots,
    no traversal).
    """
    return (
        isinstance(key, str)
        and _KEY_MIN <= len(key) <= _KEY_MAX
        and not set(key) - _KEY_ALPHABET
    )


def _check_key(key: str) -> str:
    if not valid_key(key):
        raise StoreError(f"invalid cache key {key!r}")
    return key


def content_digest(data: bytes) -> str:
    """SHA-256 hex digest of a raw payload."""
    return hashlib.sha256(data).hexdigest()


# -- self-verifying JSON entries ----------------------------------------------
#
# The point cache's on-disk format, unchanged since PR 1: a canonical
# JSON object whose "digest" field is the SHA-256 of the rest.  The same
# bytes are valid in every tier, which is what keeps LocalStore files
# byte-identical to the historical layout and lets any tier detect rot.

def entry_digest(entry: Dict[str, object]) -> str:
    """Content digest of an entry (excluding its own ``digest`` field)."""
    blob = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def encode_entry(entry: Dict[str, object]) -> bytes:
    """Canonical self-verifying bytes of ``entry`` (digest embedded)."""
    entry = dict(entry)
    entry.pop("digest", None)
    entry["digest"] = entry_digest(entry)
    return json.dumps(entry, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def decode_entry(blob: bytes) -> Optional[Dict[str, object]]:
    """Parse and verify a self-verifying entry; ``None`` on any defect.

    Truncated, non-JSON, non-object, digest-less or digest-mismatched
    payloads all read as ``None`` — the caller treats them as a miss.
    """
    try:
        data = json.loads(blob)
    except (ValueError, TypeError):
        return None
    if not isinstance(data, dict):
        return None
    stored = data.pop("digest", None)
    if stored != entry_digest(data):
        return None
    return data


def entry_validator(key: str, blob: bytes) -> bool:
    """Tier validator for point-cache traffic: the blob must be a valid
    self-verifying entry.  Garbage from a faulty remote fails here and is
    counted as a remote error instead of being written back locally."""
    return decode_entry(blob) is not None


# -- the protocol -------------------------------------------------------------

@runtime_checkable
class CacheStore(Protocol):
    """Byte store keyed by hex digests, safe against torn reads.

    ``get`` returns a complete verified payload or ``None`` — it never
    raises on corrupt data (local stores quarantine and miss; transports
    may raise on *transport* failure, which :class:`TieredCache` absorbs).
    ``put`` atomically stores a payload and returns ``True`` iff this
    call wrote it; on shared media it is put-if-absent, so concurrent
    writers of the same key converge on one object.
    """

    name: str

    def get(self, key: str) -> Optional[bytes]: ...

    def put(self, key: str, data: bytes) -> bool: ...

    def exists(self, key: str) -> bool: ...

    def list_keys(self) -> List[str]: ...


# -- per-tier traffic counters ------------------------------------------------

@dataclass
class StoreStats:
    """Tiered-cache traffic, snapshot/delta'd into manifest provenance."""

    #: payloads served by the local tier
    local_hits: int = 0
    #: local-tier misses (the remote was consulted, or there was none)
    local_misses: int = 0
    #: payloads served by the remote store (then written back locally)
    remote_hits: int = 0
    #: keys absent from the remote as well — a true miss
    remote_misses: int = 0
    #: remote calls that failed or returned corrupt data (degraded to miss)
    remote_errors: int = 0
    #: payloads newly uploaded to the remote
    uploads: int = 0
    #: bytes sent to the remote
    bytes_up: int = 0
    #: bytes received from the remote
    bytes_down: int = 0

    _FIELDS = (
        "local_hits", "local_misses", "remote_hits", "remote_misses",
        "remote_errors", "uploads", "bytes_up", "bytes_down",
    )

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def any(self) -> bool:
        return any(getattr(self, name) for name in self._FIELDS)

    @staticmethod
    def delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
        """The nonzero per-counter growth between two snapshots."""
        return {
            name: after[name] - before.get(name, 0)
            for name in after
            if after[name] - before.get(name, 0) > 0
        }


# -- implementations ----------------------------------------------------------

class MemoryStore:
    """In-process dict store: the zero-configuration local tier."""

    name = "memory"

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}

    def get(self, key: str) -> Optional[bytes]:
        return self._objects.get(_check_key(key))

    def put(self, key: str, data: bytes) -> bool:
        self._objects[_check_key(key)] = bytes(data)
        return True

    def exists(self, key: str) -> bool:
        return _check_key(key) in self._objects

    def list_keys(self) -> List[str]:
        return sorted(self._objects)


class LocalStore:
    """The historical per-run cache directory, as a store.

    Layout and bytes are exactly what :class:`PointCache` always wrote:
    ``<dir>/<key>.json`` holding a self-verifying canonical JSON entry.
    ``get`` verifies the embedded digest and quarantines anything else
    (renamed ``*.corrupt``, counted in ``stats.quarantined``), so a
    legacy cache directory behaves identically through this class.
    ``put`` is an atomic overwrite (tmp + rename): the local tier is
    single-writer-per-run and a recomputed entry must be able to replace
    a quarantine survivor.
    """

    name = "local"

    def __init__(self, root: str,
                 stats: Optional[ResilienceStats] = None) -> None:
        if os.path.exists(root) and not os.path.isdir(root):
            raise StoreError(
                f"cache path {root!r} exists and is not a directory"
            )
        self.root = root
        self.stats = stats if stats is not None else ResilienceStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{_check_key(key)}.json")

    def _quarantine(self, path: str) -> None:
        self.stats.quarantined += 1
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            pass

    def get(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        except OSError:
            self._quarantine(path)
            return None
        if decode_entry(raw) is None:
            self._quarantine(path)
            return None
        return raw

    def put(self, key: str, data: bytes) -> bool:
        path = self._path(key)
        os.makedirs(self.root, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def exists(self, key: str) -> bool:
        return os.path.isfile(self._path(key))

    def list_keys(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name[:-5]
            for name in names
            if name.endswith(".json")
            and not name.endswith(".ckpt.json")
            and valid_key(name[:-5])
        )


def _envelope(data: bytes) -> bytes:
    return ENVELOPE_MAGIC + content_digest(data).encode("ascii") + b"\n" + data


def _unwrap(blob: bytes) -> Optional[bytes]:
    """The payload of an envelope iff its digest verifies; else ``None``."""
    if not blob.startswith(ENVELOPE_MAGIC):
        return None
    head, sep, payload = blob.partition(b"\n")
    if not sep:
        return None
    declared = head[len(ENVELOPE_MAGIC):].decode("ascii", "replace")
    if content_digest(payload) != declared:
        return None
    return payload


class SharedFSStore:
    """Content-addressed object tree on a shared filesystem.

    ``<root>/objects/<key[:2]>/<key>`` holds an enveloped payload
    (``repro-cas/1 <sha256>\\n<bytes>``).  ``put`` writes a private tmp
    file and links it into place: ``os.link`` fails with ``EEXIST`` if
    another writer won, which is exactly put-if-absent — no lock, no
    window where a reader can see a partial object (rename/link are
    atomic on POSIX).  Corrupt objects (a torn write would need a kernel
    bug, but disks rot) quarantine like local entries.
    """

    name = "sharedfs"

    def __init__(self, root: str) -> None:
        if os.path.exists(root) and not os.path.isdir(root):
            raise StoreError(
                f"shared store path {root!r} exists and is not a directory"
            )
        self.root = root
        self.corrupt = 0

    def _path(self, key: str) -> str:
        key = _check_key(key)
        return os.path.join(self.root, "objects", key[:2], key)

    def get(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"shared store read failed: {exc}") from exc
        payload = _unwrap(blob)
        if payload is None:
            self.corrupt += 1
            try:
                os.replace(path, f"{path}.corrupt")
            except OSError:
                pass
            return None
        return payload

    def put(self, key: str, data: bytes) -> bool:
        path = self._path(key)
        if os.path.exists(path):
            return False
        parent = os.path.dirname(path)
        try:
            os.makedirs(parent, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"shared store mkdir failed: {exc}") from exc
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(_envelope(data))
            try:
                os.link(tmp, path)
                return True
            except FileExistsError:
                return False
            except OSError:
                # Filesystems without hard links (some network mounts):
                # fall back to an atomic rename.  Last writer wins, but
                # both writers wrote identical bytes for a given key, so
                # readers still only ever see one complete object.
                os.replace(tmp, path)
                tmp = None
                return True
        except OSError as exc:
            raise StoreError(f"shared store write failed: {exc}") from exc
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def exists(self, key: str) -> bool:
        return os.path.isfile(self._path(key))

    def list_keys(self) -> List[str]:
        objects = os.path.join(self.root, "objects")
        found: List[str] = []
        try:
            shards = os.listdir(objects)
        except OSError:
            return []
        for shard in shards:
            try:
                names = os.listdir(os.path.join(objects, shard))
            except OSError:
                continue
            found.extend(name for name in names if valid_key(name))
        return sorted(found)


class HTTPStore:
    """Stdlib HTTP client for the ``/cache/objects/{key}`` endpoint.

    Conditional on digests in both directions: ``put`` HEADs first and
    skips the upload when the object is already present (the common case
    in a warm fleet), and declares the payload digest in
    ``X-Repro-Digest`` so the server can reject a truncated body;
    ``get`` re-hashes the downloaded bytes against the digest the server
    declared.  Transport and server failures raise :class:`StoreError`
    (for :class:`TieredCache` to absorb); a 404 is a plain miss.
    """

    name = "http"

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise StoreError(f"not an http(s) url: {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _url(self, key: str) -> str:
        return f"{self.base_url}/cache/objects/{_check_key(key)}"

    def _request(self, method: str, url: str,
                 data: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None):
        req = urllib.request.Request(
            url, data=data, method=method, headers=headers or {}
        )
        try:
            return urllib.request.urlopen(req, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                exc.close()
                return None
            raise StoreError(
                f"{method} {url} failed: HTTP {exc.code}"
            ) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise StoreError(f"{method} {url} failed: {exc}") from exc

    def get(self, key: str) -> Optional[bytes]:
        response = self._request("GET", self._url(key))
        if response is None:
            return None
        with response:
            body = response.read()
            declared = response.headers.get("X-Repro-Digest")
        if declared is not None and content_digest(body) != declared:
            raise StoreError(
                f"download of {key} corrupt: digest mismatch"
            )
        return body

    def put(self, key: str, data: bytes) -> bool:
        if self.exists(key):
            return False
        response = self._request(
            "PUT", self._url(key), data=data,
            headers={
                "X-Repro-Digest": content_digest(data),
                "Content-Type": "application/octet-stream",
            },
        )
        if response is None:
            raise StoreError(f"PUT {key} rejected")
        with response:
            return response.status == 201

    def exists(self, key: str) -> bool:
        response = self._request("HEAD", self._url(key))
        if response is None:
            return False
        response.close()
        return True

    def list_keys(self) -> List[str]:
        response = self._request("GET", f"{self.base_url}/cache/keys")
        if response is None:
            return []
        with response:
            try:
                payload = json.loads(response.read())
            except ValueError as exc:
                raise StoreError("cache key listing corrupt") from exc
        keys = payload.get("keys", []) if isinstance(payload, dict) else []
        return sorted(k for k in keys if valid_key(k))


# -- the tiered cache ---------------------------------------------------------

class TieredCache:
    """Local read-through tier in front of a remote store.

    * ``get``: local hit wins; on a local miss the remote is consulted
      and its (validated) answer written back to the local tier.
    * ``put``: lands in the local tier and is uploaded to the remote
      (put-if-absent, so a warm fleet uploads each object once).
    * Every remote failure — transport error, server error, corrupt
      payload — is caught, counted (``stats.remote_errors``, folded into
      ``resilience.remote_errors``) and logged; the call degrades to a
      miss.  The compute path never sees an exception from the remote.

    ``validator(key, blob) -> bool`` guards what the remote may inject
    into the local tier; the engine passes :func:`entry_validator` so a
    garbage body can never be written back as a point entry.
    """

    name = "tiered"

    def __init__(
        self,
        local: CacheStore,
        remote: CacheStore,
        *,
        stats: Optional[StoreStats] = None,
        resilience: Optional[ResilienceStats] = None,
        validator: Optional[Callable[[str, bytes], bool]] = None,
    ) -> None:
        self.local = local
        self.remote = remote
        self.stats = stats if stats is not None else StoreStats()
        self.resilience = resilience
        self.validator = validator

    def _incident(self, op: str, key: str, detail: str) -> None:
        self.stats.remote_errors += 1
        if self.resilience is not None:
            self.resilience.remote_errors += 1
        store = getattr(self.remote, "name", "store")
        log_event(
            log, "remote_error", level=logging.WARNING,
            msg=(
                f"remote cache {store} {op} on {key} "
                f"degraded to miss: {detail}"
            ),
            store=store, op=op, key=key[:16], error=detail,
        )

    def _valid(self, key: str, blob: bytes) -> bool:
        return self.validator is None or self.validator(key, blob)

    def get(self, key: str) -> Optional[bytes]:
        blob = self.local.get(key)
        if blob is not None and self._valid(key, blob):
            self.stats.local_hits += 1
            return blob
        self.stats.local_misses += 1
        try:
            blob = self.remote.get(key)
        except Exception as exc:
            self._incident("get", key, repr(exc))
            return None
        if blob is None:
            self.stats.remote_misses += 1
            return None
        if not self._valid(key, blob):
            self._incident("get", key, "payload failed validation")
            return None
        self.stats.remote_hits += 1
        self.stats.bytes_down += len(blob)
        self.local.put(key, blob)
        return blob

    def put(self, key: str, data: bytes) -> bool:
        stored = self.local.put(key, data)
        try:
            if self.remote.put(key, data):
                self.stats.uploads += 1
                self.stats.bytes_up += len(data)
        except Exception as exc:
            self._incident("put", key, repr(exc))
        return stored

    def exists(self, key: str) -> bool:
        if self.local.exists(key):
            return True
        try:
            return self.remote.exists(key)
        except Exception as exc:
            self._incident("exists", key, repr(exc))
            return False

    def list_keys(self) -> List[str]:
        keys = set(self.local.list_keys())
        try:
            keys.update(self.remote.list_keys())
        except Exception as exc:
            self._incident("list", "*", repr(exc))
        return sorted(keys)


# -- chaos harness ------------------------------------------------------------

class FaultInjectingStore:
    """Deterministic transport-fault wrapper for the chaos lane.

    Mirrors :class:`~repro.yieldsim.resilience.FaultSchedule`: every
    fault fires on a fixed cadence of calls, so a chaos test is exactly
    reproducible.  ``*_every=n`` fires on the n-th, 2n-th, ... call of
    that operation:

    * ``get_error_every`` — the read raises :class:`StoreError`
      (connection refused, 500, timeout — the transport died).
    * ``get_garbage_every`` — the read returns a garbage body (a proxy
      mangled it; digests must catch it downstream).
    * ``get_slow_every`` — the read sleeps ``slow_seconds`` first (a
      saturated remote; correctness must not depend on latency).
    * ``put_error_every`` — the upload raises :class:`StoreError`.
    * ``put_truncate_every`` — only a prefix of the payload is uploaded
      (a dropped connection mid-PUT).

    ``injected`` counts fired faults by mode.
    """

    name = "faulty"

    def __init__(
        self,
        inner: CacheStore,
        *,
        get_error_every: Optional[int] = None,
        get_garbage_every: Optional[int] = None,
        get_slow_every: Optional[int] = None,
        put_error_every: Optional[int] = None,
        put_truncate_every: Optional[int] = None,
        slow_seconds: float = 0.01,
    ) -> None:
        self.inner = inner
        self.get_error_every = get_error_every
        self.get_garbage_every = get_garbage_every
        self.get_slow_every = get_slow_every
        self.put_error_every = put_error_every
        self.put_truncate_every = put_truncate_every
        self.slow_seconds = slow_seconds
        self.gets = 0
        self.puts = 0
        self.injected: Dict[str, int] = {
            "get_error": 0, "get_garbage": 0, "get_slow": 0,
            "put_error": 0, "put_truncate": 0,
        }

    @staticmethod
    def _fires(every: Optional[int], count: int) -> bool:
        return every is not None and every > 0 and count % every == 0

    def get(self, key: str) -> Optional[bytes]:
        self.gets += 1
        if self._fires(self.get_slow_every, self.gets):
            self.injected["get_slow"] += 1
            time.sleep(self.slow_seconds)
        if self._fires(self.get_error_every, self.gets):
            self.injected["get_error"] += 1
            raise StoreError("injected transport failure on get")
        if self._fires(self.get_garbage_every, self.gets):
            self.injected["get_garbage"] += 1
            return b"\x00\xffinjected garbage body\x00"
        return self.inner.get(key)

    def put(self, key: str, data: bytes) -> bool:
        self.puts += 1
        if self._fires(self.put_error_every, self.puts):
            self.injected["put_error"] += 1
            raise StoreError("injected transport failure on put")
        if self._fires(self.put_truncate_every, self.puts):
            self.injected["put_truncate"] += 1
            data = data[: max(1, len(data) // 2)]
        return self.inner.put(key, data)

    def exists(self, key: str) -> bool:
        return self.inner.exists(key)

    def list_keys(self) -> List[str]:
        return self.inner.list_keys()


# -- URL dispatch -------------------------------------------------------------

def store_from_url(url: str, timeout: float = 10.0) -> CacheStore:
    """The store a ``--cache-url`` names.

    ``http://`` / ``https://`` → :class:`HTTPStore`;
    ``file:///path`` or a bare path → :class:`SharedFSStore`;
    ``memory://`` → :class:`MemoryStore` (tests and demos).
    """
    if not isinstance(url, str) or not url:
        raise StoreError(f"invalid cache url {url!r}")
    if url.startswith(("http://", "https://")):
        return HTTPStore(url, timeout=timeout)
    if url.startswith("memory://"):
        return MemoryStore()
    if url.startswith("file://"):
        url = url[len("file://"):]
        if not url:
            raise StoreError("file:// cache url needs a path")
    return SharedFSStore(url)
