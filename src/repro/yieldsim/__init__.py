"""Yield estimation: analytical models, Monte-Carlo and sweeps.

* :mod:`repro.yieldsim.analytical` — ``p**n`` baseline and the DTMB(1,6)
  cluster ("flower") model of Figure 7;
* :mod:`repro.yieldsim.montecarlo` — batched repairability simulation for
  the higher-redundancy designs (Figures 9, 13);
* :mod:`repro.yieldsim.effective` — the EY = Y/(1+RR) trade-off metric
  (Figure 10);
* :mod:`repro.yieldsim.defects` — pluggable spatial defect models
  (i.i.d., fixed-count, clustered spots, rate mixing, radial gradients)
  behind every Monte-Carlo regime;
* :mod:`repro.yieldsim.kernel` — the vectorized screen->match
  repairability kernel behind the sweeps;
* :mod:`repro.yieldsim.engine` — parallel sweep execution with derived
  per-point seeds and an optional on-disk result cache;
* :mod:`repro.yieldsim.sweeps` — reproducible parameter sweeps;
* :mod:`repro.yieldsim.stats` — Wilson confidence intervals.
"""

from repro.yieldsim.analytical import (
    dtmb16_yield,
    flower_yield,
    yield_curve,
    yield_no_redundancy,
)
from repro.yieldsim.defects import (
    DefectGeometry,
    DefectModel,
    FixedCount,
    IIDBernoulli,
    NegativeBinomialClustered,
    RadialGradient,
    SpotDefects,
    family_from_spec,
    geometry_for,
)
from repro.yieldsim.effective import chip_effective_yield, effective_yield
from repro.yieldsim.engine import EnginePoint, SweepEngine
from repro.yieldsim.exact import MAX_EXACT_CELLS, exact_yield
from repro.yieldsim.kernel import PointSpec, RepairStructure, ScreenStats
from repro.yieldsim.montecarlo import DEFAULT_RUNS, YieldSimulator
from repro.yieldsim.stats import YieldEstimate, wilson_interval
from repro.yieldsim.sweeps import (
    DEFAULT_P_GRID,
    DefectCountPoint,
    DefectModelPoint,
    SurvivalPoint,
    analytical_curves_dtmb16,
    default_engine,
    defect_count_sweep,
    defect_model_sweep,
    effective_yield_sweep,
    survival_sweep,
)

__all__ = [
    "SweepEngine",
    "EnginePoint",
    "PointSpec",
    "RepairStructure",
    "ScreenStats",
    "DefectModel",
    "DefectGeometry",
    "IIDBernoulli",
    "FixedCount",
    "SpotDefects",
    "NegativeBinomialClustered",
    "RadialGradient",
    "family_from_spec",
    "geometry_for",
    "default_engine",
    "yield_no_redundancy",
    "flower_yield",
    "dtmb16_yield",
    "yield_curve",
    "YieldSimulator",
    "DEFAULT_RUNS",
    "YieldEstimate",
    "wilson_interval",
    "effective_yield",
    "chip_effective_yield",
    "exact_yield",
    "MAX_EXACT_CELLS",
    "SurvivalPoint",
    "DefectCountPoint",
    "DefectModelPoint",
    "survival_sweep",
    "effective_yield_sweep",
    "defect_count_sweep",
    "defect_model_sweep",
    "analytical_curves_dtmb16",
    "DEFAULT_P_GRID",
]
