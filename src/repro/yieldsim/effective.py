"""Effective yield: the paper's yield-vs-area trade-off metric.

Adding spares raises yield but also raises array area and manufacturing
cost.  Section 6 defines::

    EY = Y * (n / N) = Y / (1 + RR)

where ``n`` is the number of primary cells, ``N`` the total number of cells
and ``RR`` the redundancy ratio.  Figure 10 plots EY for all four designs at
n = 100: high redundancy (DTMB(4,4)) wins at low survival probability,
low redundancy (DTMB(1,6)/(2,6)) wins when cells rarely fail.
"""

from __future__ import annotations

from typing import Union

from repro.chip.biochip import Biochip
from repro.errors import SimulationError
from repro.yieldsim.stats import YieldEstimate

__all__ = ["effective_yield", "chip_effective_yield"]


def effective_yield(yield_value: float, redundancy_ratio: float) -> float:
    """``EY = Y / (1 + RR)`` (equivalently ``Y * n / N``)."""
    if not 0.0 <= yield_value <= 1.0:
        raise SimulationError(f"yield must be in [0, 1], got {yield_value}")
    if redundancy_ratio < 0.0:
        raise SimulationError(
            f"redundancy ratio must be >= 0, got {redundancy_ratio}"
        )
    return yield_value / (1.0 + redundancy_ratio)


def chip_effective_yield(
    chip: Biochip, estimate: Union[YieldEstimate, float]
) -> float:
    """EY using the chip's *actual* finite-array redundancy ratio.

    Finite arrays clip the spare pattern at the boundary, so the realized
    RR differs slightly from the asymptotic s/p; using the chip's own count
    keeps Y and EY consistent for the same object.
    """
    value = estimate.value if isinstance(estimate, YieldEstimate) else estimate
    return effective_yield(value, chip.redundancy_ratio())
