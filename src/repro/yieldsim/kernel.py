"""Vectorized repairability screening kernel for Monte-Carlo yield runs.

The repairability question behind every Monte-Carlo run — "can each faulty
needed primary be matched to a distinct surviving adjacent spare?" — is a
bipartite matching feasibility problem.  Solving it with per-run Python
matching (``YieldSimulator._repairable``) is exact but slow.  This module
answers the same question for a whole batch of fault maps at once, using a
funnel of *exact* vectorized reductions; only the runs the screen cannot
decide fall through to the integer Kuhn matching.

The funnel, in order:

1. **zero-fault**: runs with no faulty needed primary are good.
2. **dead end**: a faulty primary with zero surviving adjacent spares
   makes the run bad (Hall's condition fails on a singleton set).
3. **peeling** (iterated to a fixed point, all runs at once):

   * *forced moves* — a faulty primary with exactly one surviving spare
     must take it.  Two primaries forced onto the same spare make the
     run bad; otherwise the assignment is committed and both endpoints
     leave the problem.
   * *private spares* — a surviving spare demanded by exactly one faulty
     primary can be greedily committed to it.

   Both reductions are feasibility-preserving in *both* directions (the
   standard exchange argument: a demand-1 spare is used by no other
   faulty primary in any matching, and a degree-1 primary has no other
   choice), so peeling never changes the verdict — it only shrinks the
   residual problem, usually to nothing.
4. **Hall bounds** on the residual: if the union of surviving candidate
   spares is smaller than the number of unmatched faulty primaries the
   run is bad; if every unmatched primary's surviving degree is at least
   that number, Hall's condition holds and the run is good.
5. **Kuhn residue**: whatever survives the screen (typically well under
   a percent of runs at the paper's survival probabilities) is decided
   by exact augmenting-path matching on the *reduced* problem.

:class:`RepairStructure` precomputes the padded primary->spare adjacency
arrays the screen needs; :func:`classify_repairable` runs the funnel and
returns a per-run verdict plus :class:`ScreenStats` counters so callers
(and tests) can see where each run was decided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, Optional, Sequence, Set, Tuple

import numpy as np

from repro.chip.biochip import Biochip
from repro.errors import SimulationError
from repro.faults.injection import RngLike, make_rng
from repro.yieldsim.defects import (
    DefectGeometry,
    DefectModel,
    FixedCount,
    IIDBernoulli,
    fixed_fault_alive,
)
from repro.yieldsim.stats import split_batches

__all__ = [
    "GOOD",
    "BAD",
    "UNDECIDED",
    "RepairStructure",
    "ScreenStats",
    "PointSpec",
    "classify_repairable",
    "count_repairable",
    "kuhn_repairable",
    "survival_batch_sizes",
    "fixed_fault_alive",
    "survival_successes",
    "fixed_fault_successes",
    "model_successes",
    "point_model",
    "simulate_points",
    "point_entropy",
    "shard_seed",
    "shard_plan",
]

#: Per-run verdict codes returned by :func:`classify_repairable`.
GOOD: int = 1
BAD: int = 0
UNDECIDED: int = -1

#: Peeling iteration cap.  Each committing iteration strictly shrinks the
#: problem, so this is a safety valve, not a correctness requirement — any
#: run still undecided at the cap is handed to the exact matcher.
_MAX_PEEL_ITERATIONS = 64

#: Memory bound (bytes of survival matrix) replicated exactly from the
#: original ``YieldSimulator`` batching so batch boundaries — and therefore
#: the RNG stream — are bit-identical to the pre-engine implementation.
_BATCH_BYTES = 8_000_000

#: Rows per *classification* sub-batch are chosen so the screen's working
#: set (entry keys, gathers, demand counts) stays inside a ~2 MB L2 cache.
#: This only slices the already-drawn survival matrix — it never changes
#: the RNG stream, and verdicts are per-run, so results are unaffected.
_CLASSIFY_BYTES = 800_000


@dataclass
class ScreenStats:
    """Where the runs of a batch were decided, stage by stage."""

    runs: int = 0
    zero_fault: int = 0
    bad_dead_end: int = 0
    bad_forced_conflict: int = 0
    bad_hall: int = 0
    good_peeled: int = 0
    good_hall: int = 0
    residue: int = 0
    residue_good: int = 0

    @property
    def screened(self) -> int:
        """Runs decided without any per-run matching."""
        return self.runs - self.residue

    def merge(self, other: "ScreenStats") -> None:
        """Accumulate another batch's counters into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ScreenStats":
        return cls(**{k: int(v) for k, v in data.items() if k in cls.__dataclass_fields__})


class RepairStructure:
    """Precomputed primary->adjacent-spare structure of one chip.

    Shared by the vectorized screen and the brute-force reference
    simulator, so both answer the repairability question on exactly the
    same bipartite graph.

    Parameters
    ----------
    chip:
        The array under evaluation (never mutated; health is ignored).
    needed:
        Primary coordinates that must work (default: every primary).
    """

    def __init__(self, chip: Biochip, needed: Optional[Iterable[Hashable]] = None):
        coords = chip.coords
        index: Dict[Hashable, int] = {c: i for i, c in enumerate(coords)}
        self.n_cells = len(coords)
        #: retained for lazy defect-geometry derivation (spatial models)
        self.chip = chip
        self._geometry: Optional[DefectGeometry] = None

        if needed is None:
            needed_coords = [c.coord for c in chip.primaries()]
        else:
            needed_coords = sorted(set(needed))
            for coord in needed_coords:
                if coord not in chip:
                    raise SimulationError(f"needed cell {coord} is not on the chip")
                if not chip[coord].is_primary:
                    raise SimulationError(
                        f"needed cell {coord} is a spare; only primaries carry "
                        "assay functionality"
                    )
        if not needed_coords:
            raise SimulationError("no needed primary cells to protect")

        #: cell indices of the protected primaries, aligned with :attr:`adj`.
        self.needed_idx = np.array([index[c] for c in needed_coords], dtype=np.int64)
        #: per-protected-primary tuple of adjacent spare *cell* indices —
        #: the graph the reference Kuhn matching walks.
        self.adj: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(index[s.coord] for s in chip.adjacent_spares(coord))
            for coord in needed_coords
        )
        self.needed_count = len(needed_coords)

        # -- dense screen arrays ------------------------------------------
        # Candidate spares: the union of all adjacency lists.  The screen
        # works in candidate positions (0..S-1), not raw cell indices.
        cand = sorted({s for lst in self.adj for s in lst})
        #: cell indices of the candidate spares, sorted.
        self.cand = np.array(cand, dtype=np.int64)
        self.n_cand = len(cand)
        pos_of = {s: i for i, s in enumerate(cand)}
        max_deg = max((len(lst) for lst in self.adj), default=0)
        width = max(max_deg, 1)
        #: (k, D) candidate positions, padded with 0 where :attr:`adj_mask`
        #: is False.
        self.adj_pos = np.zeros((self.needed_count, width), dtype=np.int32)
        self.adj_mask = np.zeros((self.needed_count, width), dtype=bool)
        for j, lst in enumerate(self.adj):
            for d, s in enumerate(lst):
                self.adj_pos[j, d] = pos_of[s]
                self.adj_mask[j, d] = True
        #: (k, S) float32 incidence matrix for the demand matmul.
        self.inc = np.zeros((self.needed_count, max(self.n_cand, 1)), dtype=np.float32)
        for j, lst in enumerate(self.adj):
            for s in lst:
                self.inc[j, pos_of[s]] = 1.0
        #: maximum primary->spare degree; <= 1 enables a closed-form screen.
        self.max_degree = max_deg
        # Reverse adjacency (candidate spare -> needed primaries), padded,
        # for the degree-<=-1 fast path's demand computation.
        members: list = [[] for _ in range(self.n_cand)]
        for j, lst in enumerate(self.adj):
            for s in lst:
                members[pos_of[s]].append(j)
        rev_width = max((len(m) for m in members), default=0) or 1
        self.rev_pos = np.zeros((max(self.n_cand, 1), rev_width), dtype=np.int32)
        self.rev_mask = np.zeros((max(self.n_cand, 1), rev_width), dtype=bool)
        for s, lst in enumerate(members):
            for d, j in enumerate(lst):
                self.rev_pos[s, d] = j
                self.rev_mask[s, d] = True

    @property
    def geometry(self) -> DefectGeometry:
        """The chip's :class:`DefectGeometry`, built on first use.

        Lazy so structures serving i.i.d.-only workloads never pay for
        adjacency/ball derivation; cached so every model sampled on this
        structure (across engine batches) shares one instance.
        """
        if self._geometry is None:
            self._geometry = DefectGeometry.from_chip(self.chip)
        return self._geometry


def kuhn_repairable(
    adj: Tuple[Tuple[int, ...], ...],
    faulty_positions: Iterable[int],
    alive: np.ndarray,
) -> bool:
    """Kuhn matching feasibility: can every faulty primary get a spare?

    ``adj`` maps protected-primary positions to adjacent spare cell
    indices; ``alive`` is the per-cell survival row.  Correctness rests on
    the standard augmenting-path theorem: if a left vertex cannot be
    augmented at the moment it is processed, it is exposed in *some*
    maximum matching, so no saturating matching exists and we can stop.
    """
    match_right: Dict[int, int] = {}

    def try_augment(j: int, visited: Set[int]) -> bool:
        for s in adj[j]:
            if not alive[s] or s in visited:
                continue
            visited.add(s)
            owner = match_right.get(s)
            if owner is None or try_augment(owner, visited):
                match_right[s] = j
                return True
        return False

    for j in faulty_positions:
        if not try_augment(j, set()):
            return False
    return True


def _kuhn_reduced(
    struct: RepairStructure, fa_row: np.ndarray, ca_row: np.ndarray
) -> bool:
    """Exact matching on a peeled residual problem.

    ``fa_row`` flags the still-unmatched faulty primaries (length k);
    ``ca_row`` flags the still-available surviving candidate spares
    (length S).  Peeling is feasibility-preserving, so the answer here is
    the answer for the original fault map.
    """
    adj_pos, adj_mask = struct.adj_pos, struct.adj_mask
    match_right: Dict[int, int] = {}

    def try_augment(j: int, visited: Set[int]) -> bool:
        for d in range(adj_pos.shape[1]):
            if not adj_mask[j, d]:
                continue
            s = int(adj_pos[j, d])
            if not ca_row[s] or s in visited:
                continue
            visited.add(s)
            owner = match_right.get(s)
            if owner is None or try_augment(owner, visited):
                match_right[s] = j
                return True
        return False

    for j in np.nonzero(fa_row)[0]:
        if not try_augment(int(j), set()):
            return False
    return True


def _classify_degree_one(
    struct: RepairStructure,
    alive: np.ndarray,
    faulty_full: np.ndarray,
    verdict: np.ndarray,
    stats: ScreenStats,
) -> Tuple[np.ndarray, ScreenStats]:
    """Closed-form screen for designs where every primary has <= 1 spare.

    With singleton neighborhoods (DTMB(1,6), the Figure 7 design) no
    matching is ever needed: a saturating assignment exists iff every
    faulty needed primary's unique spare survives and no surviving spare
    is demanded by two or more faulty primaries.
    """
    ca = alive[:, struct.cand]                      # (R, S)
    spare_pos = struct.adj_pos[:, 0]                # (k,) unique spare per primary
    has_spare = struct.adj_mask[:, 0]
    spare_alive = ca[:, spare_pos] & has_spare      # (R, k)
    dead_any = (faulty_full & ~spare_alive).any(axis=1)
    demand = (faulty_full[:, struct.rev_pos] & struct.rev_mask).sum(
        axis=2, dtype=np.uint8
    )                                               # (R, S) faulty demand per spare
    conflict_any = ((demand >= 2) & ca).any(axis=1)

    undecided = verdict == UNDECIDED
    bad_dead = undecided & dead_any
    verdict[bad_dead] = BAD
    stats.bad_dead_end = int(bad_dead.sum())
    bad_conflict = undecided & ~dead_any & conflict_any
    verdict[bad_conflict] = BAD
    stats.bad_forced_conflict = int(bad_conflict.sum())
    good = undecided & ~dead_any & ~conflict_any
    verdict[good] = GOOD
    stats.good_peeled = int(good.sum())
    return verdict, stats


def classify_repairable(
    struct: RepairStructure, alive: np.ndarray
) -> Tuple[np.ndarray, ScreenStats]:
    """Per-run repairability verdicts for a boolean survival matrix.

    ``alive`` is ``(runs, n_cells)``; the returned verdict array holds
    :data:`GOOD` or :data:`BAD` for every run (no ``UNDECIDED`` entries
    remain — the Kuhn fallback settles the residue).  The second return
    value counts how many runs each funnel stage decided.
    """
    if alive.ndim != 2 or alive.shape[1] != struct.n_cells:
        raise SimulationError(
            f"survival matrix must be (runs, {struct.n_cells}), got {alive.shape}"
        )
    n_runs = alive.shape[0]
    stats = ScreenStats(runs=n_runs)
    verdict = np.full(n_runs, UNDECIDED, dtype=np.int8)

    faulty_full = ~alive[:, struct.needed_idx]
    nf0 = faulty_full.sum(axis=1)
    zero = nf0 == 0
    verdict[zero] = GOOD
    stats.zero_fault = int(zero.sum())
    if zero.all():
        return verdict, stats
    if struct.n_cand == 0:
        # Faulty primaries but no spares anywhere: all bad.
        bad = ~zero
        verdict[bad] = BAD
        stats.bad_dead_end = int(bad.sum())
        return verdict, stats

    if struct.max_degree <= 1:
        return _classify_degree_one(struct, alive, faulty_full, verdict, stats)

    S = struct.n_cand
    # One *entry* per (run, faulty needed primary).  All peeling state is
    # per-entry, so each iteration costs O(active entries), not O(runs x k).
    k = struct.needed_count
    flat = np.flatnonzero(faulty_full)
    # int32 keys keep the hot arrays half-sized; fall back to int64 for
    # batches too large to address that way (not reachable via the ~8 MB
    # batching of the samplers below).
    key_dtype = np.int32 if n_runs * S <= np.iinfo(np.int32).max else np.int64
    re, je = np.divmod(flat, k)              # entry -> run row / primary pos
    re = re.astype(key_dtype)
    je = je.astype(np.int32)
    keys = (re * key_dtype(S))[:, None] + struct.adj_pos[je].astype(key_dtype, copy=False)
    sv = struct.adj_mask[je]                 # (E, D) structural validity
    # Flat availability of every (run, candidate-spare); commits clear bits.
    ca_flat = alive[:, struct.cand].reshape(-1).copy()
    row_left = nf0.astype(np.int64)          # unresolved entries per run

    stuck_re: list = []                      # entries handed to the final stage
    stuck_je: list = []

    for _ in range(_MAX_PEEL_ITERATIONS):
        if re.size == 0:
            break
        sp_alive = sv & ca_flat[keys]        # (E, D) usable spares per entry
        deg = sp_alive.sum(axis=1, dtype=np.uint8)

        # Dead ends: a faulty primary with no usable spare kills its run.
        # Compress their rows away before the more expensive phases.
        dead = deg == 0
        if dead.any():
            # Scatter-mark the dead rows (every entry row is still
            # undecided here, so the mask counts them exactly).
            newly = np.zeros(n_runs, dtype=bool)
            newly[re[dead]] = True
            verdict[newly] = BAD
            stats.bad_dead_end += int(newly.sum())
            live = verdict[re] == UNDECIDED
            re, je, keys, sv = re[live], je[live], keys[live], sv[live]
            sp_alive, deg = sp_alive[live], deg[live]
            if re.size == 0:
                break

        # Forced moves: a degree-1 primary must take its only spare.  Two
        # primaries forced onto the same spare are an exact infeasibility.
        live = None                          # None == every entry is live
        commit_key = np.full(re.size, -1, dtype=keys.dtype)
        forced = deg == 1
        if forced.any():
            fe = np.flatnonzero(forced)
            fd = sp_alive[fe].argmax(axis=1)
            fkey = keys[fe, fd]
            counts = np.bincount(fkey, minlength=n_runs * S)
            dup = counts[fkey] >= 2
            if dup.any():
                clash = np.zeros(n_runs, dtype=bool)
                clash[re[fe[dup]]] = True
                verdict[clash] = BAD
                stats.bad_forced_conflict += int(clash.sum())
                live = verdict[re] == UNDECIDED
                ok = live[fe]
                fe, fkey = fe[ok], fkey[ok]
            commit_key[fe] = fkey

        # Private spares: a surviving spare demanded by exactly one live
        # primary is committed to it.  Computed from the same pre-commit
        # snapshot as the forced moves — a forced spare carries its
        # forcer's demand, so forced and private picks can never collide,
        # and two private picks of one spare are impossible by definition.
        la = sp_alive if live is None else sp_alive & live[:, None]
        demand = np.bincount(keys[la], minlength=n_runs * S)
        priv = la & (demand[keys] == 1)
        haspriv = priv.any(axis=1) & (commit_key < 0)
        if haspriv.any():
            pe = np.flatnonzero(haspriv)
            pd = priv[pe].argmax(axis=1)
            commit_key[pe] = keys[pe, pd]

        committed = commit_key >= 0
        if committed.any():
            ca_flat[commit_key[committed]] = False
            row_left -= np.bincount(re[committed], minlength=n_runs)

        # Rows are independent, so a live row with no commit this
        # iteration can never progress: hand its entries to the final
        # stage now so the loop only iterates on shrinking work.
        progressed = np.zeros(n_runs, dtype=bool)
        progressed[re[committed]] = True
        keep_base = ~committed if live is None else ~committed & live
        stuck = keep_base & ~progressed[re]
        if stuck.any():
            stuck_re.append(re[stuck])
            stuck_je.append(je[stuck])
        keep = keep_base & ~stuck
        re, je, keys, sv = re[keep], je[keep], keys[keep], sv[keep]
    else:
        # Iteration cap: whatever is left goes to the exact matcher.
        if re.size:
            stuck_re.append(re)
            stuck_je.append(je)

    undecided = verdict == UNDECIDED
    peeled_good = undecided & (row_left == 0)
    verdict[peeled_good] = GOOD
    stats.good_peeled = int(peeled_good.sum())

    if stuck_re:
        s_re = np.concatenate(stuck_re)
        s_je = np.concatenate(stuck_je)
        live = verdict[s_re] == UNDECIDED
        s_re, s_je = s_re[live], s_je[live]
    else:
        s_re = np.empty(0, np.int64)
        s_je = s_re
    if s_re.size:
        rows, inverse = np.unique(s_re, return_inverse=True)
        # Dense residual problem, one row per stuck run: usually a tiny
        # fraction of the batch, so dense Hall bounds + Kuhn are cheap.
        fa = np.zeros((rows.size, struct.needed_count), dtype=bool)
        fa[inverse, s_je] = True
        ca = ca_flat.reshape(n_runs, S)[rows]
        avail = ca[:, struct.adj_pos] & struct.adj_mask
        deg = avail.sum(axis=2)
        nf = fa.sum(axis=1)

        demand = fa.astype(np.float32) @ struct.inc
        union = ((demand > 0.0) & ca).sum(axis=1)
        hall_bad = union < nf
        if hall_bad.any():
            verdict[rows[hall_bad]] = BAD
            stats.bad_hall += int(hall_bad.sum())
        min_deg = np.where(fa, deg, struct.needed_count + 7).min(axis=1)
        hall_good = ~hall_bad & (min_deg >= nf)
        if hall_good.any():
            verdict[rows[hall_good]] = GOOD
            stats.good_hall += int(hall_good.sum())

        residue = np.nonzero(~(hall_bad | hall_good))[0]
        stats.residue = int(residue.size)
        for row in residue:
            good = _kuhn_reduced(struct, fa[row], ca[row])
            verdict[rows[row]] = GOOD if good else BAD
            stats.residue_good += int(good)
    return verdict, stats


def count_repairable(
    struct: RepairStructure, alive: np.ndarray
) -> Tuple[int, ScreenStats]:
    """Number of repairable runs in a survival matrix, plus funnel stats.

    Classifies in cache-sized row slices (see :data:`_CLASSIFY_BYTES`);
    verdicts are per-run, so slicing cannot change the counts.
    """
    sub = max(1, _CLASSIFY_BYTES // max(1, struct.n_cells))
    successes = 0
    total = ScreenStats()
    for start in range(0, alive.shape[0], sub):
        verdict, stats = classify_repairable(struct, alive[start:start + sub])
        successes += int((verdict == GOOD).sum())
        total.merge(stats)
    return successes, total


# -- within-point sharding: per-shard seed derivation -------------------------

def point_entropy(seed: object) -> int:
    """Normalize a point seed into ``SeedSequence`` entropy.

    Sharded/adaptive execution derives one child stream per batch with
    ``SeedSequence.spawn``, so the point seed must be spawnable: a
    non-negative integer (or ``None``, which draws fresh entropy and gives
    an unreproducible but still valid run).  A raw ``Generator`` cannot be
    spawned deterministically, so it is rejected rather than silently
    de-synchronized.
    """
    if seed is None:
        return int(np.random.SeedSequence().entropy)
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        if seed < 0:
            raise SimulationError(
                f"sharded execution needs a non-negative integer seed, got {seed}"
            )
        return int(seed)
    raise SimulationError(
        "sharded execution needs an integer seed (or None), got "
        f"{type(seed).__name__}"
    )


def shard_seed(entropy: int, index: int) -> np.random.SeedSequence:
    """The seed of shard ``index`` of a point with the given entropy.

    Identical to ``SeedSequence(entropy).spawn(index + 1)[index]`` but
    constructible for any shard in isolation — a worker can seed shard 17
    without materializing shards 0..16.  ``SeedSequence`` hashes the
    ``(entropy, spawn_key)`` pair, so shards of one point never collide
    with each other, and points with distinct entropies never collide at
    any shard index.
    """
    if index < 0:
        raise SimulationError(f"shard index must be >= 0, got {index}")
    return np.random.SeedSequence(entropy, spawn_key=(index,))


def shard_plan(runs: int, batch: int) -> Tuple[int, ...]:
    """Split ``runs`` into ``batch``-sized shards (last one may be short).

    Delegates to :func:`repro.yieldsim.stats.split_batches` — the same
    partition :meth:`~repro.yieldsim.stats.StopRule.plan` uses, so the
    stop rule's reference semantics and the engine's shard boundaries are
    one definition.
    """
    return split_batches(runs, batch)


# -- batched samplers ---------------------------------------------------------

def survival_batch_sizes(runs: int, n_cells: int) -> Iterator[int]:
    """Batch sizes bounding the survival matrix at ~8 MB.

    Replicates the original ``YieldSimulator.run_survival`` batching
    formula exactly, so a given seed produces the identical RNG stream —
    and therefore identical successes — in both implementations.
    """
    batch = max(1, min(runs, _BATCH_BYTES // max(1, n_cells)))
    remaining = runs
    while remaining > 0:
        size = min(batch, remaining)
        remaining -= size
        yield size


# -- full per-point simulations ----------------------------------------------

def model_successes(
    struct: RepairStructure,
    model: DefectModel,
    runs: int,
    seed: RngLike = None,
    dtype: type = np.float32,
) -> Tuple[int, ScreenStats]:
    """Successes among ``runs`` fault maps drawn from a defect model.

    The one sampling loop behind every point regime: the model draws each
    ~8 MB batch of survival rows from the point's Generator (the exact
    batching of :func:`survival_batch_sizes`, so legacy streams are
    preserved model-for-model), and the screening funnel decides them.
    The result is a deterministic function of
    (chip, model params, runs, seed, dtype).
    """
    if runs < 1:
        raise SimulationError(f"runs must be >= 1, got {runs}")
    rng = make_rng(seed)
    geometry = struct.geometry
    successes = 0
    total = ScreenStats()
    for size in survival_batch_sizes(runs, struct.n_cells):
        alive = model.sample_batch(geometry, size, rng, dtype=dtype)
        got, stats = count_repairable(struct, alive)
        successes += got
        total.merge(stats)
    return successes, total


def survival_successes(
    struct: RepairStructure,
    p: float,
    runs: int,
    seed: RngLike = None,
    dtype: type = np.float32,
) -> Tuple[int, ScreenStats]:
    """Successes among ``runs`` i.i.d.-survival fault maps at probability p.

    A thin wrapper over :func:`model_successes` with
    :class:`~repro.yieldsim.defects.IIDBernoulli` — which reproduces the
    historical stream draw for draw.  The default ``float32`` uniforms
    halve RNG cost; pass ``dtype=np.float64`` to reproduce the exact RNG
    stream of the original ``YieldSimulator.run_survival`` (same batching,
    same draws), in which case the result is bit-identical to the
    brute-force simulator — every funnel reduction is exact.
    """
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"survival probability must be in [0, 1], got {p}")
    return model_successes(struct, IIDBernoulli(p), runs, seed, dtype=dtype)


@dataclass(frozen=True)
class PointSpec:
    """One Monte-Carlo point: a fault regime, its parameter and a seed.

    ``kind`` is ``"survival"`` (``param`` = survival probability p),
    ``"fixed"`` (``param`` = fault count m) or ``"model"`` (``model``
    carries an explicit :class:`~repro.yieldsim.defects.DefectModel`;
    ``param`` is its headline scalar, e.g. the sweep's nominal p).  The
    legacy kinds are aliases for :class:`IIDBernoulli`/:class:`FixedCount`
    — see :func:`point_model` — and keep their historical streams.

    ``seed`` feeds :func:`repro.faults.injection.make_rng`; every point
    owns its own generator, so results never depend on which other points
    are computed alongside it — the contract that makes sweep sharding
    bit-stable.

    ``criterion`` optionally replaces the success predicate: instead of
    counting matching-GOOD runs, the point counts runs accepted by a
    :class:`repro.functional.SuccessCriterion` (duck-typed here so the
    kernel never imports the functional layer).  ``None`` — the default —
    is the paper's matching verdict, byte-identical to historical
    streams.
    """

    kind: str
    param: float
    runs: int
    seed: object = None
    model: Optional[DefectModel] = None
    criterion: Optional[object] = None

    @classmethod
    def from_model(
        cls,
        model: DefectModel,
        runs: int,
        seed: object = None,
        param: Optional[float] = None,
    ) -> "PointSpec":
        """A ``"model"``-kind point; ``param`` defaults to the severity."""
        return cls(
            kind="model",
            param=model.severity if param is None else param,
            runs=runs,
            seed=seed,
            model=model,
        )

    def validate(self, n_cells: int) -> None:
        if self.runs < 1:
            raise SimulationError(f"runs must be >= 1, got {self.runs}")
        if self.kind == "survival":
            if not 0.0 <= self.param <= 1.0:
                raise SimulationError(
                    f"survival probability must be in [0, 1], got {self.param}"
                )
        elif self.kind == "fixed":
            m = int(self.param)
            if m != self.param or m < 0:
                raise SimulationError(f"fault count must be an int >= 0, got {self.param}")
            if m > n_cells:
                raise SimulationError(f"cannot place {m} faults on {n_cells} cells")
        elif self.kind == "model":
            if self.model is None:
                raise SimulationError("a 'model' point needs a DefectModel")
            self.model.validate(n_cells)
        else:
            raise SimulationError(f"unknown point kind {self.kind!r}")
        if self.criterion is not None:
            self.criterion.validate(n_cells)


def point_model(spec: PointSpec) -> DefectModel:
    """The defect model a point samples from.

    The legacy kinds map onto the models that reproduce their historical
    streams exactly, so every regime runs through the one
    :func:`model_successes` loop.
    """
    if spec.kind == "survival":
        return IIDBernoulli(spec.param)
    if spec.kind == "fixed":
        return FixedCount(int(spec.param))
    if spec.model is None:
        raise SimulationError(f"point kind {spec.kind!r} carries no model")
    return spec.model


def simulate_points(
    struct: RepairStructure,
    points: Sequence[PointSpec],
    dtype: type = np.float32,
) -> Tuple[list, ScreenStats]:
    """Success counts for a list of points on one chip.

    Every point owns its own RNG (seeded from ``point.seed``), so the
    result for a point is independent of which other points share the
    call — the property the sweep engine relies on to shard points across
    processes without changing any number.  Returns per-point success
    counts plus the merged :class:`ScreenStats` of everything computed.
    """
    results: list = []
    total = ScreenStats()
    for point in points:
        point.validate(struct.n_cells)
        got, stats = model_successes(
            struct, point_model(point), point.runs, point.seed, dtype=dtype
        )
        results.append(got)
        total.merge(stats)
    return results, total


def fixed_fault_successes(
    struct: RepairStructure, m: int, runs: int, seed: RngLike = None
) -> Tuple[int, ScreenStats]:
    """Successes among ``runs`` exactly-m-fault maps (Figure 13 regime).

    The sampling distribution matches ``YieldSimulator.run_fixed_faults``
    (uniform m-subsets of all cells) but the draw is vectorized, so the
    two implementations agree statistically, not bit-for-bit.
    """
    if m < 0:
        raise SimulationError(f"fault count must be >= 0, got {m}")
    if m > struct.n_cells:
        raise SimulationError(f"cannot place {m} faults on {struct.n_cells} cells")
    return model_successes(struct, FixedCount(m), runs, seed)
