"""Fault tolerance for the execution stack: retries, timeouts, fault injection.

The engine's seed-derivation contract makes recovery *free of semantics*:
every compute unit — a flat point chunk or a within-point batch — is a
pure function of its arguments (chip payload, spec, shard seed), so a
crashed, hung, corrupted or preempted unit can simply be executed again
and must produce the identical result.  This module turns that property
into an execution policy:

:class:`RetryPolicy`
    Bounded attempts with deterministic exponential backoff and an
    optional per-unit wall-clock timeout.  "Deterministic" matters: the
    backoff schedule is a pure function of the attempt number, so two
    runs that hit the same faults sleep the same — no jitter, no clock
    reads in the decision path, nothing for a reproduction to diverge on.
:class:`UnitRunner`
    The scheduler's submit/collect loop over any
    :class:`~repro.yieldsim.executors.Executor`, with the retry policy
    applied to failed, timed-out and corrupted units, and
    ``BrokenProcessPool`` survival (rebuild the pool, resubmit every unit
    that was in flight).  Because a resubmitted unit recomputes the
    identical value, a run that survived any number of incidents is
    **bit-identical** to an uninterrupted one — the property the chaos
    test lane (``pytest -m chaos``) enforces.
:class:`FaultInjectingExecutor` / :class:`FaultSchedule`
    The test harness for everything above: wraps any executor and, from
    a deterministic fault schedule, makes chosen units crash, hang past
    the timeout, return corrupted payloads, kill their worker process,
    or preempt the whole run mid-flight.
:class:`ResilienceStats`
    Incident counters (retries, timeouts, corrupt payloads, pool
    rebuilds, checkpoint resumes, quarantined cache entries) shared by
    the scheduler, the point cache and the engine; the registry folds a
    per-dispatch delta into the manifest provenance.

Checkpointing itself — the journaled partial-fold state that lets an
adaptive point resume at fold *k* — lives with the cache it extends, in
:class:`~repro.yieldsim.scheduler.PointCache`; this module only accounts
for it.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Tuple,
)

from repro.errors import SimulationError, UnitFailure
from repro.obs.events import get_logger, log_event
from repro.obs.trace import Tracer

__all__ = [
    "RetryPolicy",
    "ResilienceStats",
    "UnitRunner",
    "FaultSchedule",
    "FaultInjectingExecutor",
    "InjectedFault",
    "Preemption",
    "DEFAULT_RETRY_POLICY",
    "unit_digest",
]

_log = get_logger("resilience")


def unit_digest(fn: Callable[..., Any], args: Tuple[Any, ...]) -> str:
    """Content digest identifying a logical compute unit.

    A pure function of the unit's (function, args) payload — the same
    identity a :class:`FaultSchedule` keys on and the tracer stamps on
    unit spans, so a chaos-lane incident and its trace span name the
    same unit.
    """
    blob = pickle.dumps(
        (getattr(fn, "__module__", ""), getattr(fn, "__qualname__", ""), args)
    )
    return hashlib.sha256(blob).hexdigest()


def _span_name(token: Hashable) -> str:
    if isinstance(token, tuple) and token:
        if token[0] == "chunk":
            return "unit:chunk"
        if all(isinstance(x, int) for x in token):
            return "unit:shard"
    return "unit"


class InjectedFault(RuntimeError):
    """The failure a :class:`FaultInjectingExecutor` crash-mode unit raises.

    Deliberately *not* a :class:`~repro.errors.ReproError`: an injected
    crash stands in for arbitrary worker failure (OOM kill, segfault,
    preempted VM), which the retry machinery must handle without knowing
    anything about it.
    """


class Preemption(Exception):
    """The whole run was preempted (simulated SIGKILL mid-sweep).

    Raised by a :class:`FaultSchedule` with ``preempt_after`` set once
    enough units have been submitted.  It is never retried — preemption
    kills the process, not a unit — so it propagates out of
    :meth:`UnitRunner.collect` and the scheduler run dies exactly as a
    real eviction would, leaving any fold checkpoints on disk for the
    next run to resume from.
    """


# -- the retry policy ---------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``attempts`` is the *total* number of times a unit may execute (so
    ``attempts=3`` means one try plus two retries).  ``delay(n)`` after
    the ``n``-th failure is ``backoff_base * backoff_factor**(n-1)``
    capped at ``backoff_max`` — a pure function of ``n``, so recovery
    timing is reproducible.  ``unit_timeout`` (seconds of wall clock per
    unit execution) turns a hung unit into a retryable incident; ``None``
    waits forever.  ``pool_rebuilds`` bounds how many times a broken
    process pool is rebuilt within one scheduler run.
    """

    attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    unit_timeout: Optional[float] = None
    pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise SimulationError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff_base < 0:
            raise SimulationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1:
            raise SimulationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise SimulationError(
                f"backoff_max must be >= 0, got {self.backoff_max}"
            )
        if self.unit_timeout is not None and not self.unit_timeout > 0:
            raise SimulationError(
                f"unit_timeout must be > 0, got {self.unit_timeout}"
            )
        if self.pool_rebuilds < 0:
            raise SimulationError(
                f"pool_rebuilds must be >= 0, got {self.pool_rebuilds}"
            )

    def delay(self, failures: int) -> float:
        """Seconds to back off after the ``failures``-th failure (1-based)."""
        if failures < 1:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (failures - 1),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempts": self.attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "unit_timeout": self.unit_timeout,
            "pool_rebuilds": self.pool_rebuilds,
        }


#: The policy ``--retries``/``--unit-timeout`` re-shape.
DEFAULT_RETRY_POLICY = RetryPolicy()


# -- incident accounting ------------------------------------------------------

@dataclass
class ResilienceStats:
    """Cumulative incident counters, shared engine-wide.

    The engine hands one instance to its cache and scheduler; the
    registry snapshots it around a dispatch and records the delta in the
    manifest, so every artifact says whether (and how) its run had to
    recover.  All counters are incidents *survived* — a failure that
    exhausted its attempts raises instead of counting.
    """

    #: units re-executed after a crash/timeout/corruption
    retries: int = 0
    #: units that exceeded the per-unit timeout (late or hung)
    timeouts: int = 0
    #: unit payloads rejected by result validation
    corrupt_units: int = 0
    #: broken process pools rebuilt mid-run
    pool_rebuilds: int = 0
    #: batched points resumed from an on-disk fold checkpoint
    checkpoint_resumes: int = 0
    #: folds skipped because a checkpoint already contained them
    folds_resumed: int = 0
    #: cache/checkpoint files quarantined as corrupt (renamed *.corrupt)
    quarantined: int = 0
    #: remote cache-store calls that failed and degraded to a local miss
    remote_errors: int = 0

    _FIELDS = (
        "retries", "timeouts", "corrupt_units", "pool_rebuilds",
        "checkpoint_resumes", "folds_resumed", "quarantined",
        "remote_errors",
    )

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def any(self) -> bool:
        return any(getattr(self, name) for name in self._FIELDS)

    @staticmethod
    def delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
        """The nonzero per-counter growth between two snapshots."""
        return {
            name: after[name] - before.get(name, 0)
            for name in after
            if after[name] - before.get(name, 0) > 0
        }


# -- the resilient submit/collect loop ---------------------------------------

class _Unit:
    """One logical compute unit across its (possibly many) attempts."""

    __slots__ = (
        "token", "fn", "args", "validator", "attempts", "started",
        "trace_start", "digest",
    )

    def __init__(
        self,
        token: Hashable,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        validator: Optional[Callable[[Any], bool]],
    ):
        self.token = token
        self.fn = fn
        self.args = args
        self.validator = validator
        self.attempts = 0
        self.started = 0.0
        self.trace_start = 0.0
        self.digest = ""


class UnitRunner:
    """Submit/collect compute units with the retry policy applied.

    The scheduler drives both of its loops (flat chunks, batched shards)
    through one runner per :meth:`~repro.yieldsim.scheduler.PointScheduler.run`
    call.  ``submit`` launches a unit under an opaque ``token``;
    ``collect`` blocks until at least one unit *definitively* completes —
    retrying crashed, timed-out and corrupted attempts internally, with
    deterministic backoff — and returns ``(token, value)`` pairs.  A unit
    that exhausts its attempts raises :class:`~repro.errors.UnitFailure`;
    with no policy, the first failure propagates unwrapped (the
    historical behaviour).

    ``BrokenProcessPool`` is survived whether or not a policy is set
    (resubmission is always safe under the engine's purity contract):
    the pool is rebuilt via the executor's ``rebuild()`` hook and every
    in-flight unit is resubmitted, bounded by the policy's
    ``pool_rebuilds`` (default 2 without a policy).

    Per-token incident counts accumulate in :attr:`incidents` so the
    engine can attribute recovery work to individual sweep points.
    """

    def __init__(
        self,
        executor: Any,
        policy: Optional[RetryPolicy],
        stats: Optional[ResilienceStats] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        tracer: Optional[Tracer] = None,
    ):
        self.executor = executor
        self.policy = policy
        self.stats = stats if stats is not None else ResilienceStats()
        self.clock = clock
        self.sleep = sleep
        self.tracer = tracer
        self._inflight: Dict[Any, _Unit] = {}
        self._rebuilds = 0
        #: token -> {incident kind: count} for units that needed recovery
        self.incidents: Dict[Hashable, Dict[str, int]] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    @property
    def free_slots(self) -> int:
        return max(0, int(self.executor.capacity) - len(self._inflight))

    def _note(self, token: Hashable, kind: str) -> None:
        bucket = self.incidents.setdefault(token, {})
        bucket[kind] = bucket.get(kind, 0) + 1

    def _incident(
        self,
        name: str,
        unit: _Unit,
        *,
        level: int = logging.INFO,
        **fields: Any,
    ) -> None:
        """Record one incident as a trace instant and a structured event.

        Trace args stay deterministic (token, unit digest, attempt);
        volatile detail (exception text) goes only to the event log.
        """
        if self.tracer is not None:
            self.tracer.instant(
                name, cat="incident", token=str(unit.token),
                unit=unit.digest, attempt=unit.attempts,
            )
        log_event(
            _log, name, level=level, token=str(unit.token),
            unit=unit.digest, attempt=unit.attempts, **fields,
        )

    # -- submission ------------------------------------------------------------
    def submit(
        self,
        token: Hashable,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        validator: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        unit = _Unit(token, fn, tuple(args), validator)
        if self.tracer is not None:
            unit.digest = unit_digest(fn, unit.args)[:16]
            unit.trace_start = self.tracer.now_us()
        self._launch(unit)

    def _launch(self, unit: _Unit) -> None:
        """Execute one attempt of ``unit`` (retrying inline failures)."""
        while True:
            unit.attempts += 1
            unit.started = self.clock()
            try:
                future = self.executor.submit(unit.fn, *unit.args)
            except Preemption:
                raise
            except BrokenExecutor as exc:
                self._rebuild_or_raise(unit, exc)
                continue
            except Exception as exc:
                # Immediate executors run the unit inside submit(), so a
                # unit crash surfaces here rather than from result().
                self._retry_or_raise(unit, exc, "retries")
                continue
            self._inflight[future] = unit
            return

    def cancel_where(self, predicate: Callable[[Hashable], bool]) -> None:
        """Drop (and cancel) in-flight units whose token matches."""
        for future, unit in list(self._inflight.items()):
            if predicate(unit.token):
                future.cancel()
                del self._inflight[future]

    # -- recovery decisions ----------------------------------------------------
    def _retry_or_raise(self, unit: _Unit, exc: BaseException, kind: str) -> None:
        """Account one failed attempt; back off for a retry or give up."""
        if self.policy is None:
            if isinstance(exc, Exception):
                raise exc
            raise UnitFailure(f"unit {unit.token!r} failed: {exc!r}") from exc
        if unit.attempts >= self.policy.attempts:
            raise UnitFailure(
                f"unit {unit.token!r} failed after {unit.attempts} "
                f"attempts: {exc!r}"
            ) from (exc if isinstance(exc, BaseException) else None)
        self.stats.retries += 1
        self._note(unit.token, kind)
        self._incident("unit_retry", unit, kind=kind, error=repr(exc))
        self.sleep(self.policy.delay(unit.attempts))

    def _rebuild_or_raise(self, unit: _Unit, exc: BaseException) -> None:
        """Rebuild a broken pool (bounded), or give the run up."""
        limit = self.policy.pool_rebuilds if self.policy is not None else 2
        rebuild = getattr(self.executor, "rebuild", None)
        if rebuild is None or self._rebuilds >= limit:
            raise UnitFailure(
                f"process pool broke and cannot be rebuilt "
                f"(rebuilds used: {self._rebuilds}/{limit}): {exc!r}"
            ) from exc
        self._rebuilds += 1
        self.stats.pool_rebuilds += 1
        self._incident(
            "pool_rebuild", unit, level=logging.WARNING,
            rebuilds=self._rebuilds, error=repr(exc),
        )
        rebuild()
        if self.policy is not None:
            self.sleep(self.policy.delay(self._rebuilds))

    def _drain_pool_break(self, first: _Unit, exc: BaseException) -> List[_Unit]:
        """A broken pool dooms *every* in-flight future: rebuild once and
        resubmit them all (each counts one failed attempt — the killer is
        indistinguishable from its victims)."""
        doomed = [first] + list(self._inflight.values())
        self._inflight.clear()
        self._rebuild_or_raise(first, exc)
        for unit in doomed:
            self._note(unit.token, "pool_rebuilds")
            if self.policy is not None and unit.attempts >= self.policy.attempts:
                raise UnitFailure(
                    f"unit {unit.token!r} failed after {unit.attempts} "
                    f"attempts: pool broke repeatedly"
                ) from exc
        return doomed

    # -- collection ------------------------------------------------------------
    def _next_timeout(self) -> Optional[float]:
        if self.policy is None or self.policy.unit_timeout is None:
            return None
        now = self.clock()
        deadlines = [
            unit.started + self.policy.unit_timeout
            for unit in self._inflight.values()
        ]
        return max(0.001, min(deadlines) - now) if deadlines else None

    def _validate(self, unit: _Unit, value: Any) -> bool:
        if unit.validator is None:
            return True
        try:
            return bool(unit.validator(value))
        except Exception:
            return False

    def collect(self) -> List[Tuple[Hashable, Any]]:
        """Block until >=1 unit definitively completes; return its results.

        Internally loops over ``wait_any``, funnelling every failure mode
        through the policy: a crashed unit retries, a corrupted payload
        (validator says no) retries, a unit that missed its deadline
        without completing is cancelled and retried, and a broken pool is
        rebuilt with all in-flight units resubmitted.  A unit that
        completed *late* is counted as a timeout incident but its value
        is kept — by the purity contract it equals what the retry would
        recompute, so discarding it would only waste the work.
        """
        out: List[Tuple[Hashable, Any]] = []
        while self._inflight and not out:
            done = self.executor.wait_any(
                set(self._inflight), timeout=self._next_timeout()
            )
            now = self.clock()
            to_retry: List[_Unit] = []
            for future in done:
                unit = self._inflight.pop(future, None)
                if unit is None:
                    continue  # drained by an earlier pool break this round
                try:
                    value = future.result()
                except Preemption:
                    raise
                except BrokenExecutor as exc:
                    to_retry.extend(self._drain_pool_break(unit, exc))
                    continue
                except Exception as exc:
                    self._retry_or_raise(unit, exc, "retries")
                    to_retry.append(unit)
                    continue
                if not self._validate(unit, value):
                    self.stats.corrupt_units += 1
                    self._note(unit.token, "corrupt_units")
                    self._incident("unit_corrupt", unit)
                    self._retry_or_raise(
                        unit,
                        SimulationError(
                            f"unit {unit.token!r} returned a corrupt payload"
                        ),
                        "retries",
                    )
                    to_retry.append(unit)
                    continue
                if (
                    self.policy is not None
                    and self.policy.unit_timeout is not None
                    and now - unit.started > self.policy.unit_timeout
                ):
                    # Completed, but past its deadline: count the incident,
                    # keep the (bit-identical-by-contract) value.
                    self.stats.timeouts += 1
                    self._note(unit.token, "timeouts")
                    self._incident("unit_timeout", unit, late=True)
                out.append((unit.token, value))
                if self.tracer is not None:
                    end = self.tracer.now_us()
                    self.tracer.complete(
                        _span_name(unit.token), unit.trace_start,
                        end - unit.trace_start, cat="unit",
                        token=str(unit.token), unit=unit.digest,
                        attempts=unit.attempts,
                    )
            if self.policy is not None and self.policy.unit_timeout is not None:
                for future, unit in list(self._inflight.items()):
                    if now - unit.started > self.policy.unit_timeout:
                        future.cancel()
                        del self._inflight[future]
                        self.stats.timeouts += 1
                        self._note(unit.token, "timeouts")
                        self._incident("unit_timeout", unit, late=False)
                        self._retry_or_raise(
                            unit,
                            SimulationError(
                                f"unit {unit.token!r} exceeded its "
                                f"{self.policy.unit_timeout}s timeout"
                            ),
                            "timeouts",
                        )
                        to_retry.append(unit)
            for unit in to_retry:
                self._launch(unit)
        return out


# -- fault injection ----------------------------------------------------------

#: Offset applied by corrupt-mode faults: large enough that any success
#: count is pushed far out of its [0, runs] bounds, so result validation
#: must catch it.
_CORRUPT_OFFSET = 1_000_000_007


def _corrupt_payload(value: Any) -> Any:
    """A plausible-shaped but wrong unit payload (what bit-rot returns)."""
    if isinstance(value, tuple) and value:
        head = value[0]
        if isinstance(head, bool) or head is None:
            return ("__corrupted__",) + value[1:]
        if isinstance(head, int):
            return (head + _CORRUPT_OFFSET,) + value[1:]
        if isinstance(head, list):
            return (
                [
                    v + _CORRUPT_OFFSET if isinstance(v, int) else v
                    for v in head
                ],
            ) + value[1:]
    return ("__corrupted__", value)


def _run_with_fault(
    mode: str, hang_seconds: float, fn: Callable[..., Any], *args: Any
) -> Any:
    """Execute one faulted unit (module-level so process pools can pickle it)."""
    if mode == "crash":
        raise InjectedFault("injected unit crash")
    if mode == "kill":
        # Kill the hosting process without cleanup: in a worker this
        # breaks the whole pool (the BrokenProcessPool drill).
        os._exit(3)
    if mode == "hang":
        time.sleep(hang_seconds)
        return fn(*args)
    if mode == "corrupt":
        return _corrupt_payload(fn(*args))
    raise SimulationError(f"unknown fault mode {mode!r}")


def _hash_draw(seed: int, ordinal: int) -> Tuple[float, int]:
    """A deterministic (uniform in [0,1), pick) pair per (seed, unit)."""
    digest = hashlib.sha256(f"fault:{seed}:{ordinal}".encode("ascii")).digest()
    u = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return u, int.from_bytes(digest[8:12], "big")


@dataclass(frozen=True)
class FaultSchedule:
    """Which units fault, how, and for how many attempts — deterministically.

    Periodic rules (``crash_every=3`` faults every 3rd logical unit) give
    the exact grids the chaos lane asserts on; ``rate`` + ``seed`` draw
    seeded random faults over ``modes`` for soak-style tests.  Faults
    apply to the first ``fault_attempts`` attempts of a unit, so with the
    default of 1 every retry succeeds; raise it to test attempt
    exhaustion.  ``preempt_after`` simulates eviction: once that many
    submissions have happened, every further submit raises
    :class:`Preemption`, killing the run mid-flight (checkpoints stay on
    disk for the resume-path tests).
    """

    crash_every: Optional[int] = None
    hang_every: Optional[int] = None
    corrupt_every: Optional[int] = None
    kill_every: Optional[int] = None
    rate: float = 0.0
    seed: int = 0
    modes: Tuple[str, ...] = ("crash", "corrupt")
    fault_attempts: int = 1
    preempt_after: Optional[int] = None

    def fault_for(self, ordinal: int, attempt: int) -> Optional[str]:
        """The fault mode for attempt ``attempt`` of logical unit ``ordinal``."""
        if attempt > self.fault_attempts:
            return None
        periodic = (
            ("crash", self.crash_every),
            ("hang", self.hang_every),
            ("corrupt", self.corrupt_every),
            ("kill", self.kill_every),
        )
        for mode, every in periodic:
            if every is not None and every > 0 and (ordinal + 1) % every == 0:
                return mode
        if self.rate > 0:
            u, pick = _hash_draw(self.seed, ordinal)
            if u < self.rate:
                return self.modes[pick % len(self.modes)]
        return None


class FaultInjectingExecutor:
    """Wraps any executor and injects scheduled faults into its units.

    Logical units are identified by a digest of their (function, args)
    payload, so a *retried* unit keeps its ordinal and attempt count —
    which is what lets a schedule fault "the first attempt of every 3rd
    unit" and the chaos lane assert that the retried run's numbers equal
    the clean run's bit for bit.  ``injected`` counts faults by mode;
    ``rebuild`` passes through to the inner executor so pool-kill drills
    can recover.
    """

    def __init__(
        self,
        inner: Any,
        schedule: FaultSchedule,
        hang_seconds: float = 0.05,
    ):
        self.inner = inner
        self.schedule = schedule
        self.hang_seconds = hang_seconds
        #: logical-unit digest -> [ordinal, attempts seen]
        self._units: Dict[str, List[int]] = {}
        self._submissions = 0
        self.injected: Dict[str, int] = {}

    @property
    def name(self) -> str:
        return f"fault({self.inner.name})"

    @property
    def capacity(self) -> int:
        return self.inner.capacity

    def _unit_key(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> str:
        return unit_digest(fn, args)

    def start(self, units_hint: int) -> None:
        self.inner.start(units_hint)

    def submit(self, fn: Callable[..., Any], *args: Any) -> Any:
        if (
            self.schedule.preempt_after is not None
            and self._submissions >= self.schedule.preempt_after
        ):
            raise Preemption(
                f"simulated preemption after {self._submissions} submissions"
            )
        self._submissions += 1
        state = self._units.setdefault(
            self._unit_key(fn, args), [len(self._units), 0]
        )
        state[1] += 1
        mode = self.schedule.fault_for(state[0], state[1])
        if mode is None:
            return self.inner.submit(fn, *args)
        self.injected[mode] = self.injected.get(mode, 0) + 1
        return self.inner.submit(_run_with_fault, mode, self.hang_seconds, fn, *args)

    def wait_any(self, futures: Any, timeout: Optional[float] = None) -> Any:
        return self.inner.wait_any(futures, timeout=timeout)

    def shutdown(self) -> None:
        self.inner.shutdown()

    def rebuild(self) -> None:
        rebuild = getattr(self.inner, "rebuild", None)
        if rebuild is None:
            raise SimulationError(
                f"executor {self.inner.name!r} cannot rebuild"
            )
        rebuild()
