"""Closed-form yield models (Section 6 of the paper).

Two architectures admit analytical treatment:

* **no redundancy** — the chip works iff every one of its ``n`` cells
  survives: ``Y = p**n``.  This gives the paper's headline baseline number:
  a 108-cell assay chip at p = 0.99 yields only 0.99**108 = 0.3378.
* **DTMB(1, 6)** — each primary is adjacent to exactly one spare, so spare
  assignment is trivial and the array decomposes into 7-cell "flowers"
  (one spare + its six primaries).  A flower survives iff at most one of
  its 7 cells fails::

      Yc = p**7 + 7 * p**6 * (1 - p)

  and with ``n`` primaries ≈ ``n/6`` independent flowers::

      Y = Yc ** (n / 6) = (p**7 + 7 p**6 (1-p)) ** (n/6)

  The paper presents this as the exact model for DTMB(1,6); it is exact
  when the array is a disjoint union of whole flowers and an excellent
  approximation otherwise (boundary-clipped flowers are slightly *more*
  likely to survive, so the model is mildly conservative — the Monte-Carlo
  cross-check in the test suite quantifies this).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import SimulationError

__all__ = [
    "yield_no_redundancy",
    "flower_yield",
    "dtmb16_yield",
    "yield_curve",
]


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"survival probability must be in [0, 1], got {p}")


def yield_no_redundancy(p: float, n: int) -> float:
    """Yield of an ``n``-cell chip with no spares: every cell must survive."""
    _check_probability(p)
    if n < 0:
        raise SimulationError(f"cell count must be >= 0, got {n}")
    return p**n


def flower_yield(p: float) -> float:
    """Survival probability of one 7-cell DTMB(1,6) cluster.

    The flower tolerates at most one failed cell: either all 7 survive, or
    exactly one of the 7 fails (a failed primary is covered by the spare; a
    failed spare costs nothing while all primaries live).
    """
    _check_probability(p)
    q = 1.0 - p
    return p**7 + 7.0 * p**6 * q


def dtmb16_yield(p: float, n: int) -> float:
    """The paper's analytical DTMB(1,6) yield: ``flower_yield(p) ** (n/6)``.

    ``n`` is the number of *primary* cells; the exponent ``n/6`` counts
    flowers and need not be an integer (the paper applies the formula to
    arbitrary n).
    """
    _check_probability(p)
    if n < 0:
        raise SimulationError(f"primary count must be >= 0, got {n}")
    return flower_yield(p) ** (n / 6.0)


def yield_curve(
    model, ps: Sequence[float], n: int
) -> List[Tuple[float, float]]:
    """Evaluate a ``model(p, n)`` over a sweep of survival probabilities."""
    return [(p, model(p, n)) for p in ps]
