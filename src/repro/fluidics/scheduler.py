"""Protocol scheduler: executes operation sequences on a controller.

The scheduler binds droplet handles to live :class:`Droplet` objects, plans
routes with the :class:`Router` (avoiding faults and other droplets' spacing
halos), drives the :class:`ElectrodeController`, and records a timeline the
assay layer and the tests can inspect.

Mixing needs a loop of free cells around the mix site; the scheduler finds
one automatically (a triangle of mutually-adjacent cells on the hex array,
or a square loop on a square array).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import RoutingError, SchedulingError
from repro.fluidics.controller import ElectrodeController
from repro.fluidics.droplet import Droplet
from repro.fluidics.operations import (
    Detect,
    Discard,
    Dispense,
    Mix,
    Operation,
    Split,
    Transport,
)
from repro.fluidics.routing import Router

__all__ = ["TimelineEvent", "Schedule", "Scheduler"]


@dataclass(frozen=True)
class TimelineEvent:
    """One executed operation with its time span and route length."""

    op: str
    droplet: str
    start: float
    end: float
    moves: int = 0
    detail: str = ""


@dataclass
class Schedule:
    """Execution record returned by :meth:`Scheduler.run`."""

    events: List[TimelineEvent] = field(default_factory=list)
    total_time: float = 0.0
    total_moves: int = 0

    def events_for(self, droplet: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.droplet == droplet]


class Scheduler:
    """Sequentially executes a protocol on one controller.

    Sequential execution (one operation at a time) is the simplest policy
    that is always safe under the static spacing constraint; concurrent
    bioassays are expressed by interleaving their operations, which the
    multiplexed assay runner does.
    """

    def __init__(self, controller: ElectrodeController):
        self.controller = controller
        self.router = Router(controller.chip, controller.remap)
        self._bound: Dict[str, Droplet] = {}
        self._moves = 0

    def droplet(self, handle: str) -> Droplet:
        """The live droplet bound to ``handle``."""
        try:
            return self._bound[handle]
        except KeyError:
            raise SchedulingError(f"no droplet bound to handle {handle!r}") from None

    # -- main entry -------------------------------------------------------------
    def run(self, ops: Sequence[Operation]) -> Schedule:
        """Execute all operations in order; returns the timeline."""
        schedule = Schedule()
        for op in ops:
            start = self.controller.time
            moves_before = self._total_moves()
            handle, detail = self._execute(op)
            schedule.events.append(
                TimelineEvent(
                    op=type(op).__name__,
                    droplet=handle,
                    start=start,
                    end=self.controller.time,
                    moves=self._total_moves() - moves_before,
                    detail=detail,
                )
            )
        schedule.total_time = self.controller.time
        schedule.total_moves = sum(e.moves for e in schedule.events)
        return schedule

    def _total_moves(self) -> int:
        return self._moves

    # -- op execution -----------------------------------------------------------
    def _execute(self, op: Operation) -> Tuple[str, str]:
        if isinstance(op, Dispense):
            return self._do_dispense(op)
        if isinstance(op, Transport):
            return self._do_transport(op)
        if isinstance(op, Mix):
            return self._do_mix(op)
        if isinstance(op, Split):
            return self._do_split(op)
        if isinstance(op, Detect):
            return self._do_detect(op)
        if isinstance(op, Discard):
            return self._do_discard(op)
        raise SchedulingError(f"unknown operation {op!r}")

    def _other_positions(self, *exclude: str) -> Set[Hashable]:
        skip = {self._bound[h].uid for h in exclude if h in self._bound}
        return {
            d.position for d in self.controller.droplets if d.uid not in skip
        }

    def _blocked_for(self, *exclude: str) -> Set[Hashable]:
        return self.router.spacing_halo(self._other_positions(*exclude))

    def _do_dispense(self, op: Dispense) -> Tuple[str, str]:
        if op.droplet in self._bound:
            raise SchedulingError(f"handle {op.droplet!r} already bound")
        droplet = Droplet(
            position=op.at,
            volume=op.volume,
            contents=dict(op.contents),
            name=op.droplet,
        )
        self.controller.dispense(droplet)
        self._bound[op.droplet] = droplet
        return (op.droplet, f"at {op.at}")

    def _do_transport(self, op: Transport) -> Tuple[str, str]:
        droplet = self.droplet(op.droplet)
        path = self.router.route(
            droplet.position, op.to, blocked=self._blocked_for(op.droplet)
        )
        self.controller.follow_path(droplet, path)
        self._moves += len(path) - 1
        return (op.droplet, f"{len(path) - 1} moves to {op.to}")

    def _do_mix(self, op: Mix) -> Tuple[str, str]:
        first = self.droplet(op.first)
        second = self.droplet(op.second)
        blocked = self._blocked_for(op.first, op.second)
        # Park the second droplet on the mix site (staying clear of the
        # first droplet's spacing halo), bring the first next to it with a
        # sanctioned final approach, merge, then circulate.
        path2 = self.router.route(
            second.position,
            op.at,
            blocked=blocked | self.router.spacing_halo([first.position]),
        )
        self.controller.follow_path(second, path2)
        self._moves += len(path2) - 1
        halo2 = self.router.spacing_halo([second.position])
        path1 = None
        for staging in self.router.neighbors(op.at):
            if staging == second.position or not self.router.usable(
                staging, blocked
            ):
                continue
            try:
                path1 = self.router.route(
                    first.position,
                    staging,
                    blocked=blocked | (halo2 - {staging, first.position}),
                )
                break
            except RoutingError:
                continue
        if path1 is None:
            raise SchedulingError(
                f"no approach route to the mix site {op.at}"
            )
        self.controller.follow_path(first, path1, merging_with=second)
        self._moves += len(path1) - 1
        merged = self.controller.merge(first, second)
        self._moves += 1
        merged.name = op.result
        del self._bound[op.first]
        del self._bound[op.second]
        self._bound[op.result] = merged
        loop = self._mix_loop(op.at, blocked)
        self.controller.mix_in_place(merged, op.cycles, loop)
        self._moves += op.cycles * (len(loop) - 1)
        return (op.result, f"{op.cycles} mix cycles at {op.at}")

    def _do_split(self, op: Split) -> Tuple[str, str]:
        droplet = self.droplet(op.droplet)
        blocked = self._blocked_for(op.droplet)
        targets = [
            c
            for c in self.router.neighbors(droplet.position)
            if self.router.usable(c, blocked)
        ]
        opposite = self._opposite_pair(droplet.position, targets)
        if opposite is None:
            raise SchedulingError(
                f"no opposite free neighbor pair to split at {droplet.position}"
            )
        cell_a, cell_b = opposite
        half_a, half_b = self.controller.split(droplet, cell_a, cell_b)
        self._moves += 1
        half_a.name, half_b.name = op.into
        del self._bound[op.droplet]
        self._bound[op.into[0]] = half_a
        self._bound[op.into[1]] = half_b
        return (op.droplet, f"split onto {cell_a} / {cell_b}")

    def _do_detect(self, op: Detect) -> Tuple[str, str]:
        droplet = self.droplet(op.droplet)
        if droplet.position != op.at:
            path = self.router.route(
                droplet.position, op.at, blocked=self._blocked_for(op.droplet)
            )
            self.controller.follow_path(droplet, path)
            self._moves += len(path) - 1
        self.controller.hold(op.duration)
        return (op.droplet, f"detect {op.duration:.1f}s at {op.at}")

    def _do_discard(self, op: Discard) -> Tuple[str, str]:
        droplet = self.droplet(op.droplet)
        self.controller.remove(droplet)
        del self._bound[op.droplet]
        return (op.droplet, "discarded")

    # -- geometric helpers ---------------------------------------------------------
    def _mix_loop(self, at: Hashable, blocked: Set[Hashable]) -> List[Hashable]:
        """A shortest closed loop through ``at`` over usable cells.

        On the hex lattice a triangle (three mutually adjacent cells)
        exists almost everywhere; on a square lattice the minimum loop is a
        2x2 square.  Found by brute force over neighbor pairs/triples.
        """
        neighbors = [
            c for c in self.router.neighbors(at) if self.router.usable(c, blocked)
        ]
        # Triangle: at -> a -> b -> at with a, b adjacent.
        for a in neighbors:
            for b in self.router.neighbors(a):
                if b in neighbors and b != a:
                    return [at, a, b, at]
        # Square loop: at -> a -> x -> b -> at.
        for a in neighbors:
            for x in self.router.neighbors(a):
                if x == at or not self.router.usable(x, blocked):
                    continue
                for b in self.router.neighbors(x):
                    if b in neighbors and b != a:
                        return [at, a, x, b, at]
        raise SchedulingError(f"no usable mixing loop around {at}")

    def _opposite_pair(
        self, center: Hashable, candidates: List[Hashable]
    ) -> Optional[Tuple[Hashable, Hashable]]:
        """Two free neighbors diametrically opposite across ``center``."""
        for a in candidates:
            for b in candidates:
                if a == b:
                    continue
                if self._is_opposite(center, a, b):
                    return (a, b)
        return None

    @staticmethod
    def _is_opposite(center: Hashable, a: Hashable, b: Hashable) -> bool:
        # Works for both Hex (q, r) and Square (x, y) coordinates: the two
        # displacement vectors must cancel.
        try:
            da = a - center
            db = b - center
        except TypeError:  # pragma: no cover - exotic coordinate types
            return False
        return (da + db) == type(da)(0, 0)
