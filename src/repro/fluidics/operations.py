"""Assay operations: the instruction set a protocol compiles to.

A bioassay on a digital biochip is a sequence (more generally a DAG) of
fluidic operations — the paper's glucose assay is "transportation, mixing
and optical detection" after dispensing sample and reagent.  These
dataclasses are the declarative form consumed by the
:class:`~repro.fluidics.scheduler.Scheduler`; droplets are referred to by
string handles so protocols can be written before any droplet exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple, Union

from repro.errors import SchedulingError

__all__ = [
    "Dispense",
    "Transport",
    "Mix",
    "Split",
    "Detect",
    "Discard",
    "Operation",
]


@dataclass(frozen=True)
class Dispense:
    """Create a droplet at a source cell.

    ``contents`` maps species to molar concentration; ``volume`` in liters.
    """

    droplet: str
    at: Hashable
    contents: Dict[str, float] = field(default_factory=dict)
    volume: float = 1e-9

    def __post_init__(self) -> None:
        if self.volume <= 0:
            raise SchedulingError(
                f"dispense {self.droplet!r}: volume must be positive"
            )


@dataclass(frozen=True)
class Transport:
    """Route a droplet to a destination cell."""

    droplet: str
    to: Hashable


@dataclass(frozen=True)
class Mix:
    """Merge two droplets and circulate the result to homogenize it.

    The merged droplet takes the handle ``result``; both inputs cease to
    exist.  ``at`` is the cell where mixing happens (the merge target), and
    ``cycles`` the number of mixing loop circuits.
    """

    first: str
    second: str
    result: str
    at: Hashable
    cycles: int = 4

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise SchedulingError(f"mix {self.result!r}: cycles must be >= 1")
        if len({self.first, self.second, self.result}) < 2:
            raise SchedulingError("mix operands must be distinct handles")


@dataclass(frozen=True)
class Split:
    """Split a droplet into two halves with new handles."""

    droplet: str
    into: Tuple[str, str]

    def __post_init__(self) -> None:
        if len(set(self.into)) != 2:
            raise SchedulingError("split targets must be two distinct handles")


@dataclass(frozen=True)
class Detect:
    """Hold a droplet on a detection cell for an optical measurement.

    ``duration`` (seconds) is the incubation/measurement window; the assay
    layer reads the droplet's chemistry at the end of it.
    """

    droplet: str
    at: Hashable
    duration: float = 30.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SchedulingError(
                f"detect {self.droplet!r}: duration must be >= 0"
            )


@dataclass(frozen=True)
class Discard:
    """Remove a droplet from the array (waste)."""

    droplet: str


Operation = Union[Dispense, Transport, Mix, Split, Detect, Discard]
