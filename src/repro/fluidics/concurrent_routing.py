"""Concurrent droplet routing: time-expanded prioritized planning.

Digital microfluidics' headline feature is *concurrent* execution of
several bioassays on one array — which needs several droplets moving at
once without accidental coalescence.  The constraints, at lockstep time
granularity, are the standard DMFB routing rules:

* **static**: two droplets must never occupy the same or adjacent cells at
  the same time step;
* **dynamic**: a droplet may not move onto a cell that was occupied by or
  adjacent to another droplet at the *previous* step either (the trailing
  droplet would merge with the leaving one's meniscus).

:class:`ConcurrentRouter` plans with prioritized A* in time-expanded space
(waiting in place is a legal move): droplets are planned one at a time
against the reservations of those already planned, retrying with rotated
priority orders when a later droplet is boxed in.  This is the classic
prioritized-planning heuristic — complete enough for biochip-scale
instances while staying simple and auditable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.chip.biochip import Biochip
from repro.errors import RoutingError
from repro.fluidics.routing import Router
from repro.reconfig.remap import CellRemap

__all__ = ["RouteRequest", "ConcurrentPlan", "ConcurrentRouter"]


@dataclass(frozen=True)
class RouteRequest:
    """One droplet's routing goal."""

    name: str
    source: Hashable
    target: Hashable


@dataclass(frozen=True)
class ConcurrentPlan:
    """Lockstep trajectories for all requested droplets.

    ``trajectories[name][t]`` is the droplet's (logical) cell at step t;
    all trajectories share the same length (``makespan + 1``), droplets
    that arrive early wait at their targets.
    """

    trajectories: Dict[str, Tuple[Hashable, ...]]

    @property
    def makespan(self) -> int:
        any_traj = next(iter(self.trajectories.values()))
        return len(any_traj) - 1

    def total_moves(self) -> int:
        moves = 0
        for traj in self.trajectories.values():
            moves += sum(1 for a, b in zip(traj, traj[1:]) if a != b)
        return moves

    def position(self, name: str, t: int) -> Hashable:
        traj = self.trajectories[name]
        return traj[min(t, len(traj) - 1)]


class ConcurrentRouter:
    """Prioritized time-expanded planner over one chip."""

    def __init__(self, chip: Biochip, remap: Optional[CellRemap] = None):
        self.router = Router(chip, remap)

    # -- public API -----------------------------------------------------------
    def plan(
        self,
        requests: Sequence[RouteRequest],
        horizon: Optional[int] = None,
    ) -> ConcurrentPlan:
        """Plan all requests; raises :class:`RoutingError` if impossible.

        Tries every rotation of the priority order before giving up, which
        resolves the common case where one droplet must yield a corridor
        to another.
        """
        if not requests:
            raise RoutingError("no route requests")
        names = [r.name for r in requests]
        if len(set(names)) != len(names):
            raise RoutingError("duplicate droplet names in requests")
        self._validate_endpoints(requests)
        if horizon is None:
            total = sum(
                self._distance(r.source, r.target) for r in requests
            )
            horizon = 2 * total + 4 * len(requests) + 8

        last_error: Optional[RoutingError] = None
        for rotation in range(len(requests)):
            order = list(requests[rotation:]) + list(requests[:rotation])
            try:
                return self._plan_in_order(order, horizon)
            except RoutingError as exc:
                last_error = exc
        raise RoutingError(
            f"no conflict-free schedule within horizon {horizon}: {last_error}"
        )

    # -- internals --------------------------------------------------------------
    def _validate_endpoints(self, requests: Sequence[RouteRequest]) -> None:
        for r in requests:
            if not self.router.usable(r.source, set()):
                raise RoutingError(f"{r.name}: source {r.source} unusable")
            if not self.router.usable(r.target, set()):
                raise RoutingError(f"{r.name}: target {r.target} unusable")
        # Pairwise endpoint spacing: droplets start/park adjacent -> no plan.
        for a, b in itertools.combinations(requests, 2):
            if self._conflicts(a.source, b.source):
                raise RoutingError(
                    f"sources of {a.name} and {b.name} violate spacing"
                )
            if self._conflicts(a.target, b.target):
                raise RoutingError(
                    f"targets of {a.name} and {b.name} violate spacing"
                )

    def _distance(self, a: Hashable, b: Hashable) -> int:
        if hasattr(a, "distance"):
            return a.distance(b)
        return 0

    def _conflicts(self, a: Hashable, b: Hashable) -> bool:
        return a == b or b in self.router.neighbors(a) or a in self.router.neighbors(b)

    def _plan_in_order(
        self, order: Sequence[RouteRequest], horizon: int
    ) -> ConcurrentPlan:
        planned: Dict[str, List[Hashable]] = {}
        for request in order:
            trajectory = self._plan_single(request, planned, horizon)
            planned[request.name] = trajectory
        # Pad everything to the common makespan.
        makespan = max(len(t) for t in planned.values())
        trajectories = {
            name: tuple(traj + [traj[-1]] * (makespan - len(traj)))
            for name, traj in planned.items()
        }
        return ConcurrentPlan(trajectories=trajectories)

    def _others_at(
        self, planned: Dict[str, List[Hashable]], t: int
    ) -> List[Hashable]:
        return [
            traj[min(t, len(traj) - 1)] for traj in planned.values()
        ]

    def _legal(
        self,
        cell: Hashable,
        t: int,
        planned: Dict[str, List[Hashable]],
    ) -> bool:
        """May a droplet occupy ``cell`` at step ``t``?  (static+dynamic)

        The dynamic constraint is symmetric: this droplet at ``t`` must not
        conflict with an already-planned droplet's cell at ``t - 1`` (we
        would trail into its meniscus) *nor* at ``t + 1`` (it would trail
        into ours), so all three time slices are checked.
        """
        if not self.router.usable(cell, set()):
            return False
        for step in (t - 1, t, t + 1):
            if step < 0:
                continue
            for other in self._others_at(planned, step):
                if self._conflicts(cell, other):
                    return False
        return True

    def _plan_single(
        self,
        request: RouteRequest,
        planned: Dict[str, List[Hashable]],
        horizon: int,
    ) -> List[Hashable]:
        """A* over (cell, time); waiting costs one step like moving."""
        start = (request.source, 0)
        if not self._legal(request.source, 0, planned):
            raise RoutingError(
                f"{request.name}: source {request.source} conflicts with "
                "an already-planned droplet"
            )
        counter = itertools.count()
        open_heap = [
            (self._distance(request.source, request.target), next(counter), start)
        ]
        g: Dict[Tuple[Hashable, int], int] = {start: 0}
        came: Dict[Tuple[Hashable, int], Tuple[Hashable, int]] = {}
        while open_heap:
            _, _, (cell, t) = heapq.heappop(open_heap)
            if cell == request.target and self._parked_ok(
                request.target, t, planned
            ):
                return self._reconstruct(came, (cell, t))
            if t >= horizon:
                continue
            for nxt in [cell] + self.router.neighbors(cell):
                state = (nxt, t + 1)
                if not self._legal(nxt, t + 1, planned):
                    continue
                tentative = g[(cell, t)] + 1
                if tentative < g.get(state, 1 << 30):
                    g[state] = tentative
                    came[state] = (cell, t)
                    priority = tentative + self._distance(nxt, request.target)
                    heapq.heappush(open_heap, (priority, next(counter), state))
        raise RoutingError(
            f"{request.name}: no route {request.source} -> {request.target} "
            f"within horizon {horizon}"
        )

    def _parked_ok(
        self, cell: Hashable, t: int, planned: Dict[str, List[Hashable]]
    ) -> bool:
        """Once arrived, the droplet parks forever: verify no future
        conflict with droplets still moving."""
        high = max((len(traj) for traj in planned.values()), default=0)
        for step in range(t, high + 1):
            for other in self._others_at(planned, step):
                if self._conflicts(cell, other):
                    return False
        return True

    @staticmethod
    def _reconstruct(
        came: Dict[Tuple[Hashable, int], Tuple[Hashable, int]],
        state: Tuple[Hashable, int],
    ) -> List[Hashable]:
        path = [state[0]]
        while state in came:
            state = came[state]
            path.append(state[0])
        path.reverse()
        return path
