"""Electrowetting actuation physics (Section 3 of the paper).

"The velocity of the droplet can be controlled by adjusting the control
voltage (0 ~ 90 V), and droplets have been observed with velocities up to
20 cm/s."  The electrowetting force on the contact line scales with the
square of the applied voltage (Lippmann-Young), and transport requires the
voltage to exceed a threshold that overcomes contact-angle hysteresis.

:class:`ElectrowettingModel` captures exactly that: a threshold voltage, a
quadratic force law normalized so the maximum rated voltage produces the
maximum observed velocity, and helpers converting velocity to per-cell
transport time for the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FluidicsError

__all__ = ["ElectrowettingModel", "DEFAULT_MODEL"]


@dataclass(frozen=True)
class ElectrowettingModel:
    """Voltage → droplet velocity law for one chip technology.

    Parameters
    ----------
    max_voltage:
        Maximum rated actuation voltage (V); 90 V per the paper.
    threshold_voltage:
        Minimum voltage producing any motion (V) — below it, contact-angle
        hysteresis pins the droplet.
    max_velocity:
        Velocity at ``max_voltage`` (m/s); 0.20 m/s = 20 cm/s per the paper.
    pitch:
        Center-to-center electrode spacing (m); one droplet move covers
        one pitch.
    """

    max_voltage: float = 90.0
    threshold_voltage: float = 15.0
    max_velocity: float = 0.20
    pitch: float = 1.5e-3

    def __post_init__(self) -> None:
        if self.max_voltage <= 0:
            raise FluidicsError("max_voltage must be positive")
        if not 0 <= self.threshold_voltage < self.max_voltage:
            raise FluidicsError(
                "threshold voltage must satisfy 0 <= Vt < Vmax, got "
                f"Vt={self.threshold_voltage}, Vmax={self.max_voltage}"
            )
        if self.max_velocity <= 0:
            raise FluidicsError("max_velocity must be positive")
        if self.pitch <= 0:
            raise FluidicsError("pitch must be positive")

    def velocity(self, voltage: float) -> float:
        """Droplet velocity (m/s) at the given actuation voltage.

        Quadratic in voltage above threshold (electrowetting force ~ V**2),
        zero below threshold, and clamped at the rated maximum.  Voltages
        outside [0, max_voltage] are rejected rather than extrapolated —
        overdriving risks dielectric breakdown (a catastrophic fault).
        """
        if not 0.0 <= voltage <= self.max_voltage:
            raise FluidicsError(
                f"voltage {voltage} V outside the rated range "
                f"[0, {self.max_voltage}] V"
            )
        vt2 = self.threshold_voltage**2
        if voltage**2 <= vt2:
            return 0.0
        span = self.max_voltage**2 - vt2
        return self.max_velocity * (voltage**2 - vt2) / span

    def step_time(self, voltage: float) -> float:
        """Seconds for one single-cell move at ``voltage``."""
        v = self.velocity(voltage)
        if v <= 0.0:
            raise FluidicsError(
                f"voltage {voltage} V is at or below the {self.threshold_voltage} V "
                "actuation threshold; the droplet will not move"
            )
        return self.pitch / v

    def min_step_time(self) -> float:
        """Seconds per move at full rated voltage (the fastest transport)."""
        return self.pitch / self.max_velocity


#: The paper's operating point: 90 V, 20 cm/s, 1.5 mm electrodes.
DEFAULT_MODEL = ElectrowettingModel()
