"""Droplet routing: shortest usable paths on a (possibly faulty) array.

The router plans in *logical* coordinates and consults the controller's
remap + the chip's health to decide which cells are usable.  Faulty cells,
explicitly blocked cells (other droplets plus their spacing halo) are
avoided.  A* with the exact lattice distance as heuristic returns shortest
paths; BFS is exposed separately for callers that want plain reachability.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set

from repro.chip.biochip import Biochip
from repro.errors import RoutingError
from repro.reconfig.remap import CellRemap

__all__ = ["Router"]


class Router:
    """Shortest-path planner over the logical array.

    Parameters
    ----------
    chip:
        Physical array with fault state.
    remap:
        Optional repair remap; routing then happens on logical cells whose
        physical images are fault-free.
    """

    def __init__(self, chip: Biochip, remap: Optional[CellRemap] = None):
        self.chip = chip
        self.remap = remap
        # Logical cell universe: all chip coordinates that are not spares
        # serving a repair (those belong to their logical primary), plus the
        # identity for everything else.  In practice: logical cells are the
        # chip's primary coordinates when a remap exists, else all cells.
        if remap is None:
            self._logical_cells: Set[Hashable] = set(chip.coords)
        else:
            self._logical_cells = {c.coord for c in chip.primaries()}

    def usable(self, logical: Hashable, blocked: Set[Hashable]) -> bool:
        """Can a droplet sit on this logical cell right now?"""
        if logical in blocked or logical not in self._logical_cells:
            return False
        if self.remap is not None:
            if logical in self.remap.dead_cells:
                return False
            phys = self.remap.physical(logical)
        else:
            phys = logical
        return self.chip[phys].is_good

    def neighbors(self, logical: Hashable) -> List[Hashable]:
        """Logical neighbors: physical adjacency pulled back through the remap.

        Microfluidic locality acts on physical cells; two logical cells are
        logically adjacent iff their current physical images are adjacent.
        """
        if self.remap is None:
            return list(self.chip.neighbors(logical))
        phys = self.remap.physical(logical)
        out: List[Hashable] = []
        for neighbor_phys in self.chip.neighbors(phys):
            logical_neighbor = self.remap.logical(neighbor_phys)
            if (
                logical_neighbor not in self._logical_cells
                or logical_neighbor in self.remap.dead_cells
            ):
                continue
            # Pull-back must be consistent: the logical neighbor's current
            # physical image is this very cell.  This excludes a faulty
            # primary's own coordinate (its image moved to a spare) while
            # keeping the spare that now serves it.
            if self.remap.physical(logical_neighbor) == neighbor_phys:
                out.append(logical_neighbor)
        return out

    # -- search -----------------------------------------------------------------
    def route(
        self,
        src: Hashable,
        dst: Hashable,
        blocked: Iterable[Hashable] = (),
    ) -> List[Hashable]:
        """Shortest usable logical path from ``src`` to ``dst`` (inclusive).

        ``blocked`` cells are treated as unusable (other droplets and their
        spacing halos).  Raises :class:`RoutingError` when no path exists —
        e.g. when faults disconnect the array.
        """
        blocked_set = set(blocked)
        blocked_set.discard(src)
        if not self.usable(src, set()):
            raise RoutingError(f"source cell {src} is not usable")
        if not self.usable(dst, blocked_set):
            raise RoutingError(f"destination cell {dst} is not usable")
        if src == dst:
            return [src]

        heuristic = self._heuristic_for(src)
        counter = itertools.count()
        open_heap = [(heuristic(src, dst), next(counter), src)]
        g_score: Dict[Hashable, int] = {src: 0}
        came_from: Dict[Hashable, Hashable] = {}
        closed: Set[Hashable] = set()
        while open_heap:
            _, _, current = heapq.heappop(open_heap)
            if current == dst:
                return self._reconstruct(came_from, current)
            if current in closed:
                continue
            closed.add(current)
            for neighbor in self.neighbors(current):
                if neighbor in closed or not self.usable(neighbor, blocked_set):
                    continue
                tentative = g_score[current] + 1
                if tentative < g_score.get(neighbor, float("inf")):
                    g_score[neighbor] = tentative
                    came_from[neighbor] = current
                    heapq.heappush(
                        open_heap,
                        (tentative + heuristic(neighbor, dst), next(counter), neighbor),
                    )
        raise RoutingError(f"no usable route from {src} to {dst}")

    def reachable(
        self, src: Hashable, blocked: Iterable[Hashable] = ()
    ) -> Set[Hashable]:
        """All logical cells reachable from ``src`` avoiding ``blocked``."""
        blocked_set = set(blocked)
        if not self.usable(src, set()):
            raise RoutingError(f"source cell {src} is not usable")
        seen: Set[Hashable] = {src}
        stack = [src]
        while stack:
            current = stack.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen and self.usable(neighbor, blocked_set):
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    def spacing_halo(self, droplet_cells: Iterable[Hashable]) -> Set[Hashable]:
        """Cells blocked by parked droplets: their cells plus all neighbors.

        Keeping routes out of the halo preserves the static spacing
        constraint without time-expanded search: a moving droplet never
        becomes adjacent to a parked one.
        """
        halo: Set[Hashable] = set()
        for cell in droplet_cells:
            halo.add(cell)
            halo.update(self.neighbors(cell))
        return halo

    # -- helpers -----------------------------------------------------------------
    def _heuristic_for(self, sample: Hashable) -> Callable[[Hashable, Hashable], int]:
        # Logical coordinates under a remap are still lattice coordinates,
        # and remapped cells sit adjacent to their logical position, so the
        # lattice metric stays admissible (it can underestimate by at most
        # the remap perturbation, never overestimate enough to break A*
        # optimality in practice; exactness is covered by tests).
        if hasattr(sample, "distance"):
            return lambda a, b: a.distance(b)
        return lambda a, b: 0

    @staticmethod
    def _reconstruct(came_from: Dict[Hashable, Hashable], current: Hashable) -> List[Hashable]:
        path = [current]
        while current in came_from:
            current = came_from[current]
            path.append(current)
        path.reverse()
        return path
