"""Droplets: the unit of fluid a digital biochip manipulates.

Nanoliter-volume droplets carry dissolved species (glucose, enzymes,
reaction products) between electrodes.  Merging two droplets pools volumes
and dilutes species accordingly; splitting divides both in half.  The assay
chemistry operates on the species concentrations carried here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.errors import FluidicsError

__all__ = ["Droplet"]

_ids = itertools.count(1)


@dataclass
class Droplet:
    """A droplet sitting on one (logical) cell of the array.

    Parameters
    ----------
    position:
        Logical coordinate of the cell currently holding the droplet.
    volume:
        Volume in liters; typical dispensed droplets are ~1 nL to 1 uL.
    contents:
        Species name → molar concentration (mol/L).
    name:
        Optional human-readable tag ("sample", "reagent"...).
    """

    position: Hashable
    volume: float = 1e-9
    contents: Dict[str, float] = field(default_factory=dict)
    name: Optional[str] = None
    uid: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        if self.volume <= 0:
            raise FluidicsError(f"droplet volume must be positive, got {self.volume}")
        for species, conc in self.contents.items():
            if conc < 0:
                raise FluidicsError(
                    f"negative concentration for {species!r}: {conc}"
                )

    def concentration(self, species: str) -> float:
        """Molar concentration of ``species`` (0.0 if absent)."""
        return self.contents.get(species, 0.0)

    def moles(self, species: str) -> float:
        return self.concentration(species) * self.volume

    def merged_with(self, other: "Droplet", name: Optional[str] = None) -> "Droplet":
        """The droplet resulting from coalescing ``self`` and ``other``.

        Volumes add; each species' amount is conserved, so concentrations
        dilute by the volume ratio.  The merged droplet sits at *this*
        droplet's position (the electrode where coalescence completed).
        """
        total = self.volume + other.volume
        species = set(self.contents) | set(other.contents)
        contents = {
            s: (self.moles(s) + other.moles(s)) / total for s in species
        }
        return Droplet(
            position=self.position,
            volume=total,
            contents=contents,
            name=name or self.name,
        )

    def split(self) -> Tuple["Droplet", "Droplet"]:
        """Two half-volume daughters with identical concentrations.

        Positions are set to this droplet's cell; the controller moves them
        apart onto opposite neighbors as part of the split operation.
        """
        half = self.volume / 2.0
        make = lambda: Droplet(  # noqa: E731 - tiny local factory
            position=self.position,
            volume=half,
            contents=dict(self.contents),
            name=self.name,
        )
        return (make(), make())

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        tag = self.name or f"droplet{self.uid}"
        return f"Droplet({tag}@{self.position}, {self.volume:.2e} L)"
