"""Electrode controller: droplet state machine with fluidic constraints.

"The configurations of the microfluidic array are programmed into a
microcontroller that controls the voltages of electrodes in the array."
This module plays that microcontroller: it owns the droplets on one chip,
executes single-cell moves / merges / splits, enforces the fluidic
constraints that make those operations physically meaningful, and accounts
for elapsed time through the electrowetting model.

Constraints enforced on every operation:

* **locality** — a droplet moves only to a physically adjacent cell;
* **health** — the (physical) target cell must be fault-free; with a
  :class:`~repro.reconfig.remap.CellRemap` installed, logical coordinates
  are translated to the repaired physical cells first;
* **occupancy** — one droplet per cell;
* **static spacing** — two droplets must never sit on adjacent cells unless
  they are about to merge (otherwise they would coalesce accidentally).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.chip.biochip import Biochip
from repro.errors import (
    ConstraintViolationError,
    FluidicsError,
    IllegalMoveError,
)
from repro.fluidics.droplet import Droplet
from repro.fluidics.electrowetting import DEFAULT_MODEL, ElectrowettingModel
from repro.reconfig.remap import CellRemap

__all__ = ["ElectrodeController"]


class ElectrodeController:
    """Executes droplet operations on one biochip.

    Parameters
    ----------
    chip:
        The physical array (with any fault map already applied).
    remap:
        Optional logical→physical repair remap.  All controller APIs take
        *logical* coordinates; without a remap, logical == physical.
    model:
        Electrowetting physics used for time accounting.
    voltage:
        Actuation voltage for transports (defaults to the rated maximum).
    """

    def __init__(
        self,
        chip: Biochip,
        remap: Optional[CellRemap] = None,
        model: ElectrowettingModel = DEFAULT_MODEL,
        voltage: Optional[float] = None,
    ):
        self.chip = chip
        self.remap = remap
        self.model = model
        self.voltage = voltage if voltage is not None else model.max_voltage
        self._step_time = model.step_time(self.voltage)
        self.time: float = 0.0
        self._droplets: Dict[int, Droplet] = {}
        self._occupied: Dict[Hashable, int] = {}  # logical coord -> droplet uid

    # -- coordinate translation ------------------------------------------------
    def physical(self, logical: Hashable) -> Hashable:
        """The physical cell serving a logical coordinate."""
        if self.remap is not None:
            return self.remap.physical(logical)
        return logical

    def _check_usable(self, logical: Hashable) -> None:
        phys = self.physical(logical)
        cell = self.chip[phys]
        if cell.is_faulty:
            raise IllegalMoveError(
                f"cell {logical} (physical {phys}) is faulty and unusable"
            )

    # -- droplet bookkeeping ------------------------------------------------------
    @property
    def droplets(self) -> List[Droplet]:
        return [self._droplets[uid] for uid in sorted(self._droplets)]

    def droplet_at(self, logical: Hashable) -> Optional[Droplet]:
        uid = self._occupied.get(logical)
        return self._droplets.get(uid) if uid is not None else None

    def _enforce_spacing(self, moving: Droplet, allow_contact_with: Tuple[int, ...] = ()) -> None:
        """No two droplets on adjacent cells, except sanctioned merges.

        Adjacency is evaluated on *physical* cells — that is where the
        fluid actually sits.
        """
        phys = self.physical(moving.position)
        for other in self._droplets.values():
            if other.uid == moving.uid or other.uid in allow_contact_with:
                continue
            other_phys = self.physical(other.position)
            if other_phys in self.chip.neighbors(phys) or other_phys == phys:
                raise ConstraintViolationError(
                    f"droplets {moving.name or moving.uid} and "
                    f"{other.name or other.uid} violate the static spacing "
                    f"constraint at {phys} / {other_phys}"
                )

    # -- operations ---------------------------------------------------------------
    def dispense(self, droplet: Droplet) -> Droplet:
        """Place a freshly dispensed droplet on its (logical) cell."""
        self._check_usable(droplet.position)
        if droplet.position in self._occupied:
            raise ConstraintViolationError(
                f"cannot dispense onto occupied cell {droplet.position}"
            )
        self._droplets[droplet.uid] = droplet
        self._occupied[droplet.position] = droplet.uid
        try:
            self._enforce_spacing(droplet)
        except ConstraintViolationError:
            del self._droplets[droplet.uid]
            del self._occupied[droplet.position]
            raise
        return droplet

    def remove(self, droplet: Droplet) -> None:
        """Take a droplet off the array (waste port / collected product)."""
        if droplet.uid not in self._droplets:
            raise FluidicsError(f"droplet {droplet.uid} is not on the chip")
        del self._droplets[droplet.uid]
        del self._occupied[droplet.position]

    def move(self, droplet: Droplet, target: Hashable, merging_with: Optional[Droplet] = None) -> None:
        """One single-cell move of ``droplet`` to logical cell ``target``."""
        if droplet.uid not in self._droplets:
            raise FluidicsError(f"droplet {droplet.uid} is not on the chip")
        src_phys = self.physical(droplet.position)
        dst_phys = self.physical(target)
        if dst_phys not in self.chip.neighbors(src_phys):
            raise IllegalMoveError(
                f"{target} (physical {dst_phys}) is not adjacent to "
                f"{droplet.position} (physical {src_phys}); droplets only "
                "move to physically adjacent cells"
            )
        self._check_usable(target)
        occupant = self._occupied.get(target)
        if occupant is not None and (
            merging_with is None or occupant != merging_with.uid
        ):
            raise ConstraintViolationError(f"cell {target} is occupied")

        del self._occupied[droplet.position]
        droplet.position = target
        allow = (merging_with.uid,) if merging_with is not None else ()
        try:
            self._enforce_spacing(droplet, allow_contact_with=allow)
        except ConstraintViolationError:
            # Roll the move back so the controller state stays consistent.
            droplet.position = self.remap.logical(src_phys) if self.remap else src_phys
            self._occupied[droplet.position] = droplet.uid
            raise
        if occupant is None:
            self._occupied[target] = droplet.uid
        self.time += self._step_time

    def follow_path(self, droplet: Droplet, path: List[Hashable], merging_with: Optional[Droplet] = None) -> None:
        """Move along ``path`` (first element must be the current cell)."""
        if not path:
            raise FluidicsError("empty path")
        if path[0] != droplet.position:
            raise IllegalMoveError(
                f"path starts at {path[0]} but droplet is at {droplet.position}"
            )
        for step in path[1:]:
            last = step == path[-1]
            self.move(
                droplet, step, merging_with=merging_with if last else None
            )

    def merge(self, mover: Droplet, stationary: Droplet) -> Droplet:
        """Coalesce two droplets sitting on adjacent cells.

        ``mover`` steps onto ``stationary``'s cell; the merged droplet
        replaces both.  Raises if they are not adjacent.
        """
        src = self.physical(mover.position)
        dst = self.physical(stationary.position)
        if dst not in self.chip.neighbors(src):
            raise IllegalMoveError(
                f"cannot merge: {mover.position} and {stationary.position} "
                "are not adjacent"
            )
        self.move(mover, stationary.position, merging_with=stationary)
        merged = mover.merged_with(stationary)
        merged.position = stationary.position
        self.remove(mover)
        # ``stationary`` still occupies the cell; swap it for the merged one.
        del self._droplets[stationary.uid]
        self._droplets[merged.uid] = merged
        self._occupied[merged.position] = merged.uid
        return merged

    def split(self, droplet: Droplet, cell_a: Hashable, cell_b: Hashable) -> Tuple[Droplet, Droplet]:
        """Split a droplet onto two opposite adjacent cells.

        Electrowetting splitting requires pulling the droplet apart with
        electrodes on opposite sides; both targets must be free, usable
        neighbors of the droplet's cell.
        """
        center = self.physical(droplet.position)
        for cell in (cell_a, cell_b):
            self._check_usable(cell)
            if self.physical(cell) not in self.chip.neighbors(center):
                raise IllegalMoveError(
                    f"split target {cell} is not adjacent to {droplet.position}"
                )
            if cell in self._occupied and self._occupied[cell] != droplet.uid:
                raise ConstraintViolationError(f"split target {cell} is occupied")
        if cell_a == cell_b:
            raise IllegalMoveError("split targets must be distinct")
        half_a, half_b = droplet.split()
        self.remove(droplet)
        half_a.position = cell_a
        half_b.position = cell_b
        self._droplets[half_a.uid] = half_a
        self._occupied[cell_a] = half_a.uid
        self._droplets[half_b.uid] = half_b
        self._occupied[cell_b] = half_b.uid
        self.time += self._step_time
        return (half_a, half_b)

    def mix_in_place(self, droplet: Droplet, cycles: int, loop: List[Hashable]) -> None:
        """Mix by circulating the droplet around a small loop of cells.

        Droplet mixing on a digital biochip is done by moving the merged
        droplet in a closed loop; each circuit folds the fluid layers.
        ``loop`` must start and end at the droplet's cell.
        """
        if cycles < 1:
            raise FluidicsError(f"mix cycles must be >= 1, got {cycles}")
        if not loop or loop[0] != droplet.position or loop[-1] != droplet.position:
            raise FluidicsError(
                "mix loop must start and end at the droplet's cell"
            )
        for _ in range(cycles):
            self.follow_path(droplet, loop)

    def hold(self, duration: float) -> None:
        """Let time pass with no droplet motion (incubation, detection)."""
        if duration < 0:
            raise FluidicsError(f"hold duration must be >= 0, got {duration}")
        self.time += duration
