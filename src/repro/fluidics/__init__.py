"""Droplet-level fluidics: the executable substrate under the bioassays.

* :mod:`repro.fluidics.droplet` — droplets with volumes and chemistry;
* :mod:`repro.fluidics.electrowetting` — the paper's 0-90 V / 20 cm/s
  actuation physics;
* :mod:`repro.fluidics.controller` — the electrode microcontroller with
  locality / health / occupancy / spacing constraints;
* :mod:`repro.fluidics.routing` — fault-avoiding shortest-path routing,
  repair-remap aware;
* :mod:`repro.fluidics.operations` / :mod:`repro.fluidics.scheduler` — the
  protocol instruction set and its sequential executor.
"""

from repro.fluidics.concurrent_routing import (
    ConcurrentPlan,
    ConcurrentRouter,
    RouteRequest,
)
from repro.fluidics.controller import ElectrodeController
from repro.fluidics.droplet import Droplet
from repro.fluidics.electrowetting import DEFAULT_MODEL, ElectrowettingModel
from repro.fluidics.operations import (
    Detect,
    Discard,
    Dispense,
    Mix,
    Operation,
    Split,
    Transport,
)
from repro.fluidics.routing import Router
from repro.fluidics.scheduler import Schedule, Scheduler, TimelineEvent

__all__ = [
    "Droplet",
    "ElectrowettingModel",
    "DEFAULT_MODEL",
    "ElectrodeController",
    "Router",
    "Dispense",
    "Transport",
    "Mix",
    "Split",
    "Detect",
    "Discard",
    "Operation",
    "Scheduler",
    "Schedule",
    "TimelineEvent",
    "ConcurrentRouter",
    "ConcurrentPlan",
    "RouteRequest",
]
