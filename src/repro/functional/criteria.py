"""Pluggable success criteria: when does a repaired chip still *work*?

The paper's yield metric declares a chip repaired as soon as a bipartite
spare matching exists (``yieldsim/kernel.py``).  The ROADMAP's north-star
workload is stricter: after remapping, the droplet routes of a real assay
must still schedule within a deadline.  This module makes that predicate
pluggable — the success-side mirror of :mod:`repro.yieldsim.defects` on
the sampling side:

:class:`MatchingCriterion`
    Today's behavior — a run succeeds iff the matching verdict is GOOD.
    Numerically identical to the default (criterion-less) dispatch at
    equal (chip, model, runs, seed), but cached under its own digest.
:class:`RoutingCriterion`
    After local repair and :class:`~repro.reconfig.remap.CellRemap`
    remapping, the named panel assay's droplet legs (sample -> mixer,
    reagent -> mixer, mixer -> detector) must all schedule through the
    real :class:`~repro.fluidics.scheduler.Scheduler` within ``deadline``
    total electrode moves.
:class:`MultiplexedCriterion`
    ``k`` concurrent sample -> detector routes (one per panel assay) must
    be planned together by
    :class:`~repro.fluidics.concurrent_routing.ConcurrentRouter` with
    makespan within ``deadline`` time steps.

Every criterion carries a stable content ``digest()`` (the defect-model
convention) that enters engine cache keys and manifest provenance, and a
vectorized ``evaluate_batch(struct, alive, verdict)`` that decides a whole
survival batch at once through the screen funnel in
:mod:`repro.functional.funnel` — cheap exact screens first, the expensive
scheduler only on the ambiguous residue.  :class:`CriterionStats` counts
where each run was decided, stage by stage, exactly as
:class:`~repro.yieldsim.kernel.ScreenStats` does for the matching funnel.

``criterion_from_spec`` parses the CLI/serving syntax
``NAME[:k=v,...]`` — e.g. ``routing:assay=glucose,deadline=200`` or
``multiplexed:assays=glucose+lactate,deadline=240``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import ClassVar, Dict, Mapping, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.assays.library import PANEL, assay_by_analyte
from repro.errors import AssayError, CriterionError
from repro.yieldsim.kernel import GOOD, RepairStructure

__all__ = [
    "CriterionStats",
    "SuccessCriterion",
    "MatchingCriterion",
    "RoutingCriterion",
    "MultiplexedCriterion",
    "criterion_from_spec",
    "available_criteria",
]

#: Prefix of criterion counters on the worker wire dict, so one flat dict
#: can carry :class:`~repro.yieldsim.kernel.ScreenStats` keys and
#: criterion keys side by side with no collisions (both ``from_dict``
#: readers filter to their own keys).
_WIRE_PREFIX = "crit_"


@dataclass
class CriterionStats:
    """Where the runs of a batch were decided, criterion stage by stage.

    ``matching_fail`` runs failed the matching screen (exact: matching
    infeasible implies no remap exists, so every functional criterion
    fails); ``spare_only`` runs had no faulty primary anywhere and take
    the fault-free baseline verdict; ``route_clear`` runs kept the entire
    fault-free route alive (routing criterion only — exact success);
    ``unreachable`` runs lost physical connectivity for some leg (exact
    failure); only ``residue`` runs paid for the real scheduler, of which
    ``residue_ok`` succeeded.
    """

    runs: int = 0
    matching_fail: int = 0
    spare_only: int = 0
    route_clear: int = 0
    unreachable: int = 0
    residue: int = 0
    residue_ok: int = 0

    @property
    def screened(self) -> int:
        """Runs decided without driving the scheduler."""
        return self.runs - self.residue

    def merge(self, other: "CriterionStats") -> None:
        """Accumulate another batch's counters into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, int]:
        """Plain-keyed counters (telemetry blocks, ``PointRecord``)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def wire_dict(self) -> Dict[str, int]:
        """``crit_``-prefixed counters for the worker wire dict."""
        return {
            _WIRE_PREFIX + name: getattr(self, name)
            for name in self.__dataclass_fields__
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, int]) -> "CriterionStats":
        """Rebuild from a wire dict, ignoring foreign (screen) keys."""
        fields = cls.__dataclass_fields__
        out = {}
        for key, value in data.items():
            if key.startswith(_WIRE_PREFIX) and key[len(_WIRE_PREFIX):] in fields:
                out[key[len(_WIRE_PREFIX):]] = int(value)
        return cls(**out)


@runtime_checkable
class SuccessCriterion(Protocol):
    """What makes a sampled fault map a *success* for yield purposes."""

    name: str

    def params(self) -> Dict[str, object]:
        """JSON-serializable parameters, the content identity."""
        ...

    def digest(self) -> str:
        """Stable content digest of (name, params) — the cache identity."""
        ...

    def validate(self, n_cells: int) -> None:
        """Raise :class:`CriterionError` if unusable on an n-cell chip."""
        ...

    def evaluate_batch(
        self, struct: RepairStructure, alive: np.ndarray, verdict: np.ndarray
    ) -> Tuple[np.ndarray, CriterionStats]:
        """Per-run success for a survival batch.

        ``alive`` is the boolean ``(runs, n_cells)`` survival matrix;
        ``verdict`` the matching funnel's GOOD/BAD verdicts for the same
        rows.  Returns a boolean success vector plus stage counters.
        """
        ...


def _digest(name: str, params: Mapping[str, object]) -> str:
    blob = json.dumps(
        {"criterion": name, "params": dict(params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    # Short digest, the DefectModel convention: engine cache keys re-hash
    # the whole point identity, and manifests list one entry per criterion.
    return hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]


class _CriterionBase:
    """Shared digest/describe plumbing for the concrete criteria."""

    name: ClassVar[str] = "?"

    def params(self) -> Dict[str, object]:  # pragma: no cover - overridden
        raise NotImplementedError

    def digest(self) -> str:
        return _digest(self.name, self.params())

    def validate(self, n_cells: int) -> None:
        """Most criteria fit any chip; subclasses tighten this."""

    def spec(self) -> str:
        """The canonical ``NAME[:k=v,...]`` spelling (CLI round-trip)."""
        items = []
        for key, value in self.params().items():
            if isinstance(value, (list, tuple)):
                value = "+".join(str(v) for v in value)
            items.append(f"{key}={value}")
        return self.name + (":" + ",".join(items) if items else "")

    def describe(self) -> str:
        return self.spec()


@dataclass(frozen=True)
class MatchingCriterion(_CriterionBase):
    """The paper's criterion: success iff a saturating matching exists.

    Evaluates to exactly the kernel verdict, so results equal the default
    (criterion-less) dispatch number for number; only the cache/provenance
    identity differs.
    """

    name: ClassVar[str] = "matching"

    def params(self) -> Dict[str, object]:
        return {}

    def evaluate_batch(
        self, struct: RepairStructure, alive: np.ndarray, verdict: np.ndarray
    ) -> Tuple[np.ndarray, CriterionStats]:
        ok = verdict == GOOD
        stats = CriterionStats(
            runs=int(verdict.size), matching_fail=int((~ok).sum())
        )
        return ok, stats


@dataclass(frozen=True)
class RoutingCriterion(_CriterionBase):
    """Success iff the named assay's routes schedule after remapping.

    The assay's droplet program — sample and reagent transported to a mix
    site, the mixture to a detector — must execute through the real
    :class:`~repro.fluidics.scheduler.Scheduler` (on the repaired
    :class:`~repro.reconfig.remap.CellRemap`) with at most ``deadline``
    electrode moves in total.  Functional sites are placed
    deterministically on each chip (see :mod:`repro.functional.sites`),
    so the criterion applies to any design the sweeps build.
    """

    assay: str = "glucose"
    deadline: int = 200

    name: ClassVar[str] = "routing"

    def params(self) -> Dict[str, object]:
        return {"assay": self.assay, "deadline": int(self.deadline)}

    def validate(self, n_cells: int) -> None:
        if self.deadline < 1:
            raise CriterionError(
                f"routing deadline must be >= 1 move, got {self.deadline}"
            )
        try:
            assay_by_analyte(self.assay)
        except AssayError as exc:
            raise CriterionError(str(exc)) from exc
        if n_cells < 8:
            raise CriterionError(
                f"chip with {n_cells} cells is too small for a functional "
                "route program (needs 4 separated primary sites)"
            )

    def evaluate_batch(
        self, struct: RepairStructure, alive: np.ndarray, verdict: np.ndarray
    ) -> Tuple[np.ndarray, CriterionStats]:
        from repro.functional.funnel import evaluate_functional

        return evaluate_functional(struct, self, alive, verdict)


@dataclass(frozen=True)
class MultiplexedCriterion(_CriterionBase):
    """Success iff k concurrent assay routes plan within a makespan.

    One sample -> detector route per listed assay, planned *together* by
    :class:`~repro.fluidics.concurrent_routing.ConcurrentRouter` (droplets
    move simultaneously under the spacing constraint); success requires a
    plan with makespan at most ``deadline`` time steps.
    """

    assays: Tuple[str, ...] = ("glucose", "lactate")
    deadline: int = 240

    name: ClassVar[str] = "multiplexed"

    def __post_init__(self) -> None:
        # Tolerate list input so direct constructions stay hashable.
        object.__setattr__(self, "assays", tuple(self.assays))

    def params(self) -> Dict[str, object]:
        return {"assays": list(self.assays), "deadline": int(self.deadline)}

    def validate(self, n_cells: int) -> None:
        if self.deadline < 1:
            raise CriterionError(
                f"multiplexed deadline must be >= 1 step, got {self.deadline}"
            )
        if not self.assays:
            raise CriterionError("multiplexed criterion needs >= 1 assay")
        if len(self.assays) > len(PANEL):
            raise CriterionError(
                f"multiplexed criterion supports at most {len(PANEL)} "
                f"concurrent assays, got {len(self.assays)}"
            )
        for analyte in self.assays:
            try:
                assay_by_analyte(analyte)
            except AssayError as exc:
                raise CriterionError(str(exc)) from exc
        if n_cells < 8 * len(self.assays):
            raise CriterionError(
                f"chip with {n_cells} cells is too small for "
                f"{len(self.assays)} separated concurrent routes"
            )

    def evaluate_batch(
        self, struct: RepairStructure, alive: np.ndarray, verdict: np.ndarray
    ) -> Tuple[np.ndarray, CriterionStats]:
        from repro.functional.funnel import evaluate_functional

        return evaluate_functional(struct, self, alive, verdict)


# -- the NAME[:k=v,...] spec syntax -------------------------------------------

def _parse_int(name: str, key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise CriterionError(
            f"criterion {name!r}: parameter {key}={value!r} is not an integer"
        ) from None


def _require_keys(
    name: str, params: Mapping[str, str], allowed: Tuple[str, ...]
) -> None:
    unknown = set(params) - set(allowed)
    if unknown:
        raise CriterionError(
            f"unknown parameter(s) {sorted(unknown)} for criterion "
            f"{name!r} (accepts: {sorted(allowed) or 'none'})"
        )


def _build_matching(params: Mapping[str, str]) -> MatchingCriterion:
    _require_keys("matching", params, ())
    return MatchingCriterion()


def _build_routing(params: Mapping[str, str]) -> RoutingCriterion:
    _require_keys("routing", params, ("assay", "deadline"))
    kwargs: Dict[str, object] = {}
    if "assay" in params:
        kwargs["assay"] = params["assay"]
    if "deadline" in params:
        kwargs["deadline"] = _parse_int("routing", "deadline", params["deadline"])
    return RoutingCriterion(**kwargs)


def _build_multiplexed(params: Mapping[str, str]) -> MultiplexedCriterion:
    _require_keys("multiplexed", params, ("assays", "deadline"))
    kwargs: Dict[str, object] = {}
    if "assays" in params:
        assays = tuple(
            a.strip() for a in params["assays"].split("+") if a.strip()
        )
        kwargs["assays"] = assays
    if "deadline" in params:
        kwargs["deadline"] = _parse_int(
            "multiplexed", "deadline", params["deadline"]
        )
    return MultiplexedCriterion(**kwargs)


_BUILDERS = {
    "matching": _build_matching,
    "routing": _build_routing,
    "multiplexed": _build_multiplexed,
}


def available_criteria() -> Tuple[str, ...]:
    """The spellable criterion names, sorted."""
    return tuple(sorted(_BUILDERS))


def criterion_from_spec(spec: str) -> SuccessCriterion:
    """Parse ``NAME[:k=v,...]`` (the CLI ``--criterion`` syntax).

    Examples: ``matching``, ``routing:assay=lactate,deadline=150``,
    ``multiplexed:assays=glucose+lactate+glutamate,deadline=300``.  The
    returned criterion is fully validated against the assay panel; chip
    size is checked later, per point, by ``PointSpec.validate``.
    """
    text = spec.strip()
    name, _, tail = text.partition(":")
    name = name.strip().lower()
    builder = _BUILDERS.get(name)
    if builder is None:
        raise CriterionError(
            f"unknown criterion {name!r} "
            f"(available: {', '.join(available_criteria())})"
        )
    params: Dict[str, str] = {}
    if tail.strip():
        for item in tail.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key.strip():
                raise CriterionError(
                    f"criterion parameter {item!r} is not of the form k=v"
                )
            params[key.strip()] = value.strip()
    criterion = builder(params)
    # Panel/deadline sanity now; n_cells checked per chip at dispatch.
    criterion.validate(8 * max(1, len(getattr(criterion, "assays", ("x",)))))
    return criterion
