"""Screen-funnel evaluation of functional success criteria.

Deciding "does the assay still run on this repaired chip?" with the real
:class:`~repro.fluidics.scheduler.Scheduler` costs a Python A* per route
per run — exactly the per-run cost the matching kernel's funnel was built
to avoid.  This module reuses that idiom for the criterion layer: a
cascade of *exact* vectorized screens decides most runs of a survival
batch at once, and only the ambiguous residue pays for the scheduler.

The funnel, in order (every stage is exact — never a heuristic):

1. **matching fail** — a run the kernel already classified BAD has no
   complete repair plan, so no remap exists and every functional
   criterion fails.  (The kernel's GOOD verdict and
   ``plan_local_repair(...).complete`` are the same bipartite question on
   the same graph.)
2. **spare-only faults** — a run with no faulty *primary* anywhere gets
   the identity remap, and the router never inspects spare health for
   identity-mapped primaries, so its logical graph equals the fault-free
   baseline's: the run takes the precomputed baseline verdict.
3. **alive-primary route screen** (routing criterion only, one-sided
   success) — if every functional site is alive, any physical path
   through alive primary cells is a valid logical route under *any*
   complete remap (alive primaries map to themselves, so consecutive
   cells stay logically adjacent and usable).  A vectorized multi-run BFS
   over the alive-primary subgraph computes per-leg distances; if every
   leg connects and the distances sum within the deadline, the run
   succeeds.  This subsumes the untouched-baseline-route fast path — a
   surviving baseline route is one such alive-primary path — and also
   covers detours around faults.
4. **reachability / distance bound** (one-sided fail) — a logical
   route's physical images form a walk in the alive-cell graph from the
   source's anchor set (the cell itself, plus its adjacent spares when
   the matching may remap it) to the target's anchors.  A multi-source
   BFS over *all* alive cells therefore lower-bounds every leg: if some
   leg's anchors are unreachable (or dead), or the per-leg lower bounds
   already exceed the deadline (sum for sequential legs, max for the
   concurrent makespan), the run fails — whatever the scheduler would
   try.
5. **residue** — whatever remains is decided by brute force: build the
   run's :class:`~repro.reconfig.local.RepairPlan` (extended so faulty
   primaries outside the needed set become routed-around dead cells),
   install the :class:`~repro.reconfig.remap.CellRemap`, and drive the
   real scheduler (:class:`RoutingCriterion`) or
   :class:`~repro.fluidics.concurrent_routing.ConcurrentRouter`
   (:class:`MultiplexedCriterion`).

Per-(structure, criterion) precomputation — site placement, anchor
masks, padded physical adjacency, the fault-free baseline verdict — is
cached on the :class:`~repro.yieldsim.kernel.RepairStructure` via a weak
map, the ``geometry_for`` idiom of :mod:`repro.yieldsim.defects`.

:func:`criterion_successes` is the criterion twin of
:func:`repro.yieldsim.kernel.model_successes`: identical sampling loop
and RNG stream (same ~8 MB batches from the same generator), with the
criterion evaluated on cache-sized sub-slices of each batch.
"""

from __future__ import annotations

import weakref
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.assays.library import assay_by_analyte
from repro.errors import FluidicsError, ReconfigurationError, SimulationError
from repro.faults.injection import RngLike, make_rng
from repro.fluidics.concurrent_routing import ConcurrentRouter, RouteRequest
from repro.fluidics.controller import ElectrodeController
from repro.fluidics.operations import Discard, Dispense, Operation, Transport
from repro.fluidics.scheduler import Scheduler
from repro.functional.criteria import CriterionStats, SuccessCriterion
from repro.obs import profile as _profile
from repro.functional.sites import multiplexed_endpoints, routing_sites, site_legs
from repro.reconfig.local import RepairPlan, plan_local_repair
from repro.reconfig.remap import CellRemap
from repro.yieldsim.defects import DefectModel
from repro.yieldsim.kernel import (
    _CLASSIFY_BYTES,
    GOOD,
    RepairStructure,
    ScreenStats,
    classify_repairable,
    survival_batch_sizes,
)

__all__ = ["evaluate_functional", "criterion_successes", "context_for"]

#: Per-structure cache of funnel contexts, keyed by criterion digest.
_CONTEXTS: "weakref.WeakKeyDictionary[RepairStructure, Dict[str, _FunnelContext]]" = (
    weakref.WeakKeyDictionary()
)


def _bfs_distances(
    allowed: np.ndarray,
    start: np.ndarray,
    target: np.ndarray,
    nbr_pos: np.ndarray,
    nbr_mask: np.ndarray,
) -> np.ndarray:
    """Per-run BFS distance from a start set to a target set.

    All arguments are per-run boolean masks of shape ``(r, n_cells)``
    (``nbr_pos``/``nbr_mask`` are the shared padded adjacency).  Returns
    the per-run distance at which the BFS first touches the target set,
    or ``-1`` when it never does (including an empty start set).  BFS
    frontiers expand for all runs simultaneously; the loop runs at most
    graph-diameter iterations.
    """
    reached = start & allowed
    dist = np.full(reached.shape[0], -1, dtype=np.int64)
    hit = (reached & target).any(axis=1)
    dist[hit] = 0
    level = 0
    while True:
        level += 1
        grow = (reached[:, nbr_pos] & nbr_mask).any(axis=2)
        grow &= allowed & ~reached
        if not grow.any():
            break
        reached |= grow
        hit_now = (dist < 0) & (grow & target).any(axis=1)
        dist[hit_now] = level
    return dist


class _FunnelContext:
    """Everything one (structure, criterion) pair precomputes once."""

    def __init__(self, struct: RepairStructure, criterion: SuccessCriterion):
        chip = struct.chip
        coords = chip.coords
        index = {c: i for i, c in enumerate(coords)}
        n = len(coords)
        self.struct = struct
        self.criterion = criterion
        self.concurrent = criterion.name == "multiplexed"
        self.deadline = int(criterion.deadline)

        primary_cols = [index[cell.coord] for cell in chip.primaries()]
        self.primary_cols = np.asarray(primary_cols, dtype=np.int64)
        #: (n_cells,) mask of primary cells — the S3 route subgraph.
        self.primary_mask = np.zeros(n, dtype=bool)
        self.primary_mask[self.primary_cols] = True

        self.needed_coords: List[Hashable] = [
            coords[int(i)] for i in struct.needed_idx
        ]
        needed_set = set(self.needed_coords)
        #: (n_cells,) mask of primaries *outside* the needed set: faulty
        #: ones become routed-around dead cells in the residue's plan.
        self.unneeded_primary_mask = np.array(
            [
                chip[c].is_primary and c not in needed_set
                for c in coords
            ],
            dtype=bool,
        )

        # Padded physical adjacency over every cell (spares included).
        nbr_lists = [[index[x] for x in chip.neighbors(c)] for c in coords]
        width = max((len(lst) for lst in nbr_lists), default=0) or 1
        self.nbr_pos = np.zeros((n, width), dtype=np.int32)
        self.nbr_mask = np.zeros((n, width), dtype=bool)
        for i, lst in enumerate(nbr_lists):
            for d, j in enumerate(lst):
                self.nbr_pos[i, d] = j
                self.nbr_mask[i, d] = True

        # -- criterion-specific program ----------------------------------
        if self.concurrent:
            sources, targets = multiplexed_endpoints(
                chip, len(criterion.assays)
            )
            self.legs: Tuple[Tuple[Hashable, Hashable], ...] = tuple(
                zip(sources, targets)
            )
            self.requests = tuple(
                RouteRequest(name=f"{analyte}:{i}", source=src, target=dst)
                for i, (analyte, (src, dst)) in enumerate(
                    zip(criterion.assays, self.legs)
                )
            )
            self.leg_contents: Tuple[Dict[str, float], ...] = ()
        else:
            sites = routing_sites(chip)
            self.legs = tuple(site_legs(sites))
            self.requests = ()
            assay = assay_by_analyte(criterion.assay)
            lo, hi = assay.reference_range
            self.leg_contents = (
                {assay.analyte: (lo + hi) / 2.0},
                dict(assay.reagent_contents),
                {},
            )

        # Distinct functional sites; all alive => S3 eligibility.
        site_coords = sorted({c for leg in self.legs for c in leg})
        self.site_cols = np.asarray(
            [index[c] for c in site_coords], dtype=np.int64
        )
        #: per-leg (src one-hot, dst one-hot) masks for the S3 BFS.
        self.leg_nodes: List[Tuple[np.ndarray, np.ndarray]] = []
        #: per-leg (src anchors, dst anchors) masks for the S4 bound.
        self.leg_anchors: List[Tuple[np.ndarray, np.ndarray]] = []
        for src, dst in self.legs:
            pair_nodes = []
            pair_anchors = []
            for endpoint in (src, dst):
                node = np.zeros(n, dtype=bool)
                node[index[endpoint]] = True
                pair_nodes.append(node)
                anchor = node.copy()
                if endpoint in needed_set:
                    # The matching may remap a faulty needed endpoint to
                    # any adjacent spare; an unneeded endpoint always
                    # serves itself (dead when faulty).
                    for spare in chip.adjacent_spares(endpoint):
                        anchor[index[spare.coord]] = True
                pair_anchors.append(anchor)
            self.leg_nodes.append((pair_nodes[0], pair_nodes[1]))
            self.leg_anchors.append((pair_anchors[0], pair_anchors[1]))

        # -- fault-free baseline (the S2 verdict) -------------------------
        chip0 = chip.copy()
        chip0.clear_faults()
        self.baseline_ok = self._evaluate_run(
            chip0, CellRemap(chip0, RepairPlan({}, ()))
        )

        #: scratch chip for residue runs (health rewritten per run)
        self._work_chip = chip.copy()

    # -- residue: the definitional evaluator ------------------------------
    def _evaluate_run(self, chip, remap) -> bool:
        """Ground truth for one fault map: drive the real fluidics stack."""
        try:
            if self.concurrent:
                plan = ConcurrentRouter(chip, remap).plan(list(self.requests))
                return plan.makespan <= self.deadline
            controller = ElectrodeController(chip, remap=remap)
            ops: List[Operation] = []
            for i, ((src, dst), contents) in enumerate(
                zip(self.legs, self.leg_contents)
            ):
                handle = f"leg{i}"
                ops.append(Dispense(handle, at=src, contents=dict(contents)))
                ops.append(Transport(handle, to=dst))
                ops.append(Discard(handle))
            schedule = Scheduler(controller).run(ops)
            return schedule.total_moves <= self.deadline
        except (FluidicsError, ReconfigurationError):
            return False

    def _residue_run(self, row: np.ndarray) -> bool:
        """Evaluate one undecided run from its survival row."""
        chip = self._work_chip
        coords = chip.coords
        chip.clear_faults()
        faulty_cols = np.flatnonzero(~row)
        chip.apply_fault_map(coords[int(j)] for j in faulty_cols)
        plan = plan_local_repair(chip, self.needed_coords)
        if not plan.complete:  # unreachable: residue rows are matching-GOOD
            return False
        extras = tuple(
            coords[int(j)]
            for j in faulty_cols
            if self.unneeded_primary_mask[j]
        )
        remap = CellRemap(
            chip, RepairPlan(dict(plan.assignment), plan.unrepaired + extras)
        )
        return self._evaluate_run(chip, remap)

    # -- the funnel --------------------------------------------------------
    def evaluate(
        self, alive: np.ndarray, verdict: np.ndarray
    ) -> Tuple[np.ndarray, CriterionStats]:
        n_runs = alive.shape[0]
        stats = CriterionStats(runs=n_runs)
        ok = np.zeros(n_runs, dtype=bool)

        with _profile.phase("funnel_screen"):
            # 1. matching failed => no remap exists => criterion fails.
            good = verdict == GOOD
            stats.matching_fail = int(n_runs - good.sum())

            # 2. spare-only faults => identity remap => baseline verdict.
            faulty_primary = (~alive[:, self.primary_cols]).any(axis=1)
            spare_only = good & ~faulty_primary
            stats.spare_only = int(spare_only.sum())
            ok[spare_only] = self.baseline_ok
            undecided = good & faulty_primary

            # 3. alive-primary route screen (sequential legs only).
            if not self.concurrent and undecided.any():
                rows = np.flatnonzero(
                    undecided & alive[:, self.site_cols].all(axis=1)
                )
                if rows.size:
                    sub = alive[rows]
                    allowed = sub & self.primary_mask
                    total = np.zeros(rows.size, dtype=np.int64)
                    feasible = np.ones(rows.size, dtype=bool)
                    for src_node, dst_node in self.leg_nodes:
                        dist = _bfs_distances(
                            allowed,
                            np.broadcast_to(src_node, sub.shape),
                            np.broadcast_to(dst_node, sub.shape),
                            self.nbr_pos,
                            self.nbr_mask,
                        )
                        feasible &= dist >= 0
                        total += np.where(dist > 0, dist, 0)
                    clear = feasible & (total <= self.deadline)
                    cleared = rows[clear]
                    ok[cleared] = True
                    undecided[cleared] = False
                    stats.route_clear = int(clear.sum())

            # 4. physical reachability / distance lower bound (exact fail).
            if undecided.any():
                rows = np.flatnonzero(undecided)
                sub = alive[rows]
                bound = np.zeros(rows.size, dtype=np.int64)
                dead = np.zeros(rows.size, dtype=bool)
                for src_anchor, dst_anchor in self.leg_anchors:
                    dist = _bfs_distances(
                        sub,
                        np.broadcast_to(src_anchor, sub.shape),
                        np.broadcast_to(dst_anchor, sub.shape),
                        self.nbr_pos,
                        self.nbr_mask,
                    )
                    dead |= dist < 0
                    leg_bound = np.where(dist > 0, dist, 0)
                    if self.concurrent:
                        # Concurrent makespan >= the slowest droplet's moves.
                        bound = np.maximum(bound, leg_bound)
                    else:
                        bound += leg_bound
                fail = dead | (bound > self.deadline)
                failed = rows[fail]
                undecided[failed] = False
                stats.unreachable = int(fail.sum())

        # 5. residue: the real scheduler decides what's left.
        with _profile.phase("funnel_residue"):
            rows = np.flatnonzero(undecided)
            stats.residue = int(rows.size)
            for r in rows:
                got = self._residue_run(alive[r])
                ok[r] = got
                stats.residue_ok += int(got)
        return ok, stats


def context_for(
    struct: RepairStructure, criterion: SuccessCriterion
) -> _FunnelContext:
    """The cached funnel context of one (structure, criterion) pair."""
    per_struct = _CONTEXTS.get(struct)
    if per_struct is None:
        per_struct = {}
        _CONTEXTS[struct] = per_struct
    key = criterion.digest()
    ctx = per_struct.get(key)
    if ctx is None:
        ctx = _FunnelContext(struct, criterion)
        per_struct[key] = ctx
    return ctx


def evaluate_functional(
    struct: RepairStructure,
    criterion: SuccessCriterion,
    alive: np.ndarray,
    verdict: np.ndarray,
) -> Tuple[np.ndarray, CriterionStats]:
    """Funnel evaluation of one survival batch under one criterion."""
    if alive.ndim != 2 or alive.shape[1] != struct.n_cells:
        raise SimulationError(
            f"survival matrix must be (runs, {struct.n_cells}), got {alive.shape}"
        )
    return context_for(struct, criterion).evaluate(alive, verdict)


def criterion_successes(
    struct: RepairStructure,
    model: DefectModel,
    criterion: SuccessCriterion,
    runs: int,
    seed: RngLike = None,
    dtype: type = np.float32,
) -> Tuple[int, ScreenStats, CriterionStats]:
    """Functional successes among ``runs`` fault maps from a defect model.

    The criterion twin of :func:`repro.yieldsim.kernel.model_successes`:
    the sampling loop (generator, ~8 MB batches) is replicated exactly, so
    a functional point consumes the *identical RNG stream* as the matching
    point at equal (chip, model, runs, seed, dtype) — the property that
    keeps serial == pool == sharded bit-identity for functional points.
    Each batch is classified by the matching funnel, then decided by the
    criterion funnel in cache-sized sub-slices.
    """
    if runs < 1:
        raise SimulationError(f"runs must be >= 1, got {runs}")
    criterion.validate(struct.n_cells)
    rng = make_rng(seed)
    geometry = struct.geometry
    successes = 0
    screen_total = ScreenStats()
    crit_total = CriterionStats()
    sub = max(1, _CLASSIFY_BYTES // max(1, struct.n_cells))
    for size in survival_batch_sizes(runs, struct.n_cells):
        with _profile.phase("funnel_sample"):
            alive = model.sample_batch(geometry, size, rng, dtype=dtype)
        for start in range(0, alive.shape[0], sub):
            rows = alive[start:start + sub]
            with _profile.phase("funnel_classify"):
                verdict, stats = classify_repairable(struct, rows)
            screen_total.merge(stats)
            got, cstats = criterion.evaluate_batch(struct, rows, verdict)
            successes += int(got.sum())
            crit_total.merge(cstats)
    return successes, screen_total, crit_total
