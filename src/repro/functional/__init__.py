"""Functional-yield subsystem: pluggable success criteria.

A *criterion* decides what counts as a successful run of the Monte-Carlo
yield simulation: the paper's bipartite-matching verdict
(:class:`MatchingCriterion`, the default), or the stricter functional
question — after remapping, does the assay still route and schedule?
(:class:`RoutingCriterion`, :class:`MultiplexedCriterion`).  Criteria are
the success-side mirror of the defect-model subsystem on the sampling
side: content-digested for cache keys and provenance, vectorized through
an exact screen funnel (:mod:`repro.functional.funnel`) so the expensive
fluidics stack only runs on the ambiguous residue.
"""

from repro.functional.criteria import (
    CriterionStats,
    MatchingCriterion,
    MultiplexedCriterion,
    RoutingCriterion,
    SuccessCriterion,
    available_criteria,
    criterion_from_spec,
)
from repro.functional.funnel import (
    context_for,
    criterion_successes,
    evaluate_functional,
)
from repro.functional.sites import (
    multiplexed_endpoints,
    routing_sites,
    spread_primary_sites,
)

__all__ = [
    "CriterionStats",
    "SuccessCriterion",
    "MatchingCriterion",
    "RoutingCriterion",
    "MultiplexedCriterion",
    "available_criteria",
    "criterion_from_spec",
    "criterion_successes",
    "evaluate_functional",
    "context_for",
    "spread_primary_sites",
    "routing_sites",
    "multiplexed_endpoints",
]
