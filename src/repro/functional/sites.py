"""Deterministic functional-site placement on arbitrary chips.

The functional criteria need named cells to route between — dispense
ports, a mix site, detectors — but the sweeps build chips of every design
and size, so sites cannot be hard-coded coordinates.  This module derives
them from the chip itself: picks are primary cells spread across the
chip's deterministic coordinate order (ports near the array's extremes,
the mixer in the middle), chosen greedily so that any two sites are at
least ``min_distance`` apart in the physical adjacency graph.

Spacing matters twice: the concurrent router rejects endpoint pairs whose
droplets would violate the static spacing constraint, and a repair remap
can shift a site's *physical* image to an adjacent spare.  A graph
distance of >= 4 between picks keeps every image pair non-adjacent under
any local remap (images move by at most one cell each), so multiplexed
endpoint sets never become invalid merely because a repair happened.

Everything here is a pure function of the chip's structure (roles and
adjacency, never health), so site placement — and therefore criterion
results — is reproducible across processes and sessions.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Set, Tuple

from repro.chip.biochip import Biochip
from repro.errors import CriterionError

__all__ = ["spread_primary_sites", "routing_sites", "multiplexed_endpoints"]


def _ball(chip: Biochip, center: Hashable, radius: int) -> Set[Hashable]:
    """All cells within graph distance ``radius`` of ``center``."""
    seen = {center}
    frontier = [center]
    for _ in range(radius):
        nxt: List[Hashable] = []
        for coord in frontier:
            for nbr in chip.neighbors(coord):
                if nbr not in seen:
                    seen.add(nbr)
                    nxt.append(nbr)
        frontier = nxt
    return seen


def spread_primary_sites(
    chip: Biochip, count: int, min_distance: int = 2
) -> Tuple[Hashable, ...]:
    """``count`` primary cells spread across the chip, pairwise separated.

    Pick ``i`` targets the primary at index fraction ``i/(count-1)`` of
    the chip's sorted primary order and probes outward from there for the
    nearest primary at graph distance >= ``min_distance`` from every
    earlier pick.  Deterministic for a given chip structure.
    """
    if count < 1:
        raise CriterionError(f"need >= 1 functional site, got {count}")
    primaries = [cell.coord for cell in chip.primaries()]
    n = len(primaries)
    if n < count:
        raise CriterionError(
            f"chip {chip.name!r} has {n} primaries; "
            f"cannot place {count} functional sites"
        )
    picks: List[Hashable] = []
    too_close: Set[Hashable] = set()
    for i in range(count):
        target = round(i * (n - 1) / max(count - 1, 1))
        chosen = None
        for off in range(n):
            for idx in (target + off, target - off):
                if 0 <= idx < n and primaries[idx] not in too_close:
                    chosen = primaries[idx]
                    break
            if chosen is not None:
                break
        if chosen is None:
            raise CriterionError(
                f"chip {chip.name!r} cannot host {count} functional sites "
                f"at pairwise graph distance >= {min_distance}"
            )
        picks.append(chosen)
        too_close |= _ball(chip, chosen, min_distance - 1)
    return tuple(picks)


def routing_sites(chip: Biochip) -> Tuple[Hashable, Hashable, Hashable, Hashable]:
    """(sample port, mix site, detector, reagent port) for one chip.

    Four spread primaries: ports at the array extremes, the mixer and
    detector in between, so the assay's three legs cross the array.
    """
    sample, mixer, detector, reagent = spread_primary_sites(
        chip, 4, min_distance=2
    )
    return sample, mixer, detector, reagent


def multiplexed_endpoints(
    chip: Biochip, k: int
) -> Tuple[Tuple[Hashable, ...], Tuple[Hashable, ...]]:
    """(sources, targets) for ``k`` concurrent routes on one chip.

    ``2k`` spread primaries at graph distance >= 4 (safe under any local
    remap, see the module docstring); the first half are sources, the
    second half — reversed, so route ``i`` crosses the array — targets.
    """
    picks = spread_primary_sites(chip, 2 * k, min_distance=4)
    return picks[:k], tuple(reversed(picks[k:]))


def site_legs(
    sites: Tuple[Hashable, Hashable, Hashable, Hashable]
) -> Sequence[Tuple[Hashable, Hashable]]:
    """The (src, dst) legs of the single-assay route program."""
    sample, mixer, detector, reagent = sites
    return ((sample, mixer), (reagent, mixer), (mixer, detector))
