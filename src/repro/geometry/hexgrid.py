"""Finite regions of the hexagonal lattice.

A biochip occupies a finite region of the infinite hex lattice.  The paper's
arrays are drawn as rectangles of close-packed hexagons; we support the three
region shapes that occur in practice:

* :class:`RectRegion` — ``cols x rows`` in *offset* layout (odd-r shifted),
  the shape of the arrays in Figures 3-6 and of the diagnostics chip;
* :class:`ParallelogramRegion` — axial-aligned parallelogram, convenient for
  sublattice math;
* :class:`HexagonRegion` — a radius-R filled hexagon.

All regions are immutable, iterable in deterministic order, and support
membership tests, boundary queries and neighbor queries restricted to the
region.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import GeometryError
from repro.geometry.hex import Hex, hex_disk

__all__ = [
    "HexRegion",
    "RectRegion",
    "ParallelogramRegion",
    "HexagonRegion",
    "FrozenRegion",
    "offset_to_axial",
    "axial_to_offset",
]


def offset_to_axial(col: int, row: int) -> Hex:
    """Convert odd-r offset coordinates (col, row) to axial.

    Odd rows are shifted half a cell to the right — the standard "odd-r"
    horizontal layout for pointy-top hexagons.
    """
    q = col - (row - (row & 1)) // 2
    return Hex(q, row)


def axial_to_offset(h: Hex) -> Tuple[int, int]:
    """Convert axial coordinates to odd-r offset ``(col, row)``."""
    col = h.q + (h.r - (h.r & 1)) // 2
    return (col, h.r)


class HexRegion:
    """Abstract finite set of hex cells.

    Subclasses must populate ``self._cells`` (an ordered tuple) before
    calling ``super().__init__()`` is complete; this base class provides the
    shared set algebra and adjacency-restricted queries.
    """

    _cells: Tuple[Hex, ...]

    def __init__(self, cells: Iterable[Hex]):
        ordered = tuple(sorted(set(cells)))
        if not ordered:
            raise GeometryError("a region must contain at least one cell")
        self._cells = ordered
        self._cell_set: Set[Hex] = set(ordered)

    # -- container protocol -------------------------------------------------
    def __contains__(self, h: Hex) -> bool:
        return h in self._cell_set

    def __iter__(self) -> Iterator[Hex]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HexRegion):
            return NotImplemented
        return self._cell_set == other._cell_set

    def __hash__(self) -> int:
        return hash(self._cells)

    @property
    def cells(self) -> Tuple[Hex, ...]:
        """All cells, sorted lexicographically by ``(q, r)``."""
        return self._cells

    # -- region-restricted adjacency ----------------------------------------
    def neighbors_in(self, h: Hex) -> List[Hex]:
        """Neighbors of ``h`` that fall inside the region."""
        return [n for n in h.neighbors() if n in self._cell_set]

    def degree(self, h: Hex) -> int:
        """Number of in-region neighbors (6 for interior cells)."""
        return len(self.neighbors_in(h))

    def is_boundary(self, h: Hex) -> bool:
        """True iff ``h`` is in the region but has < 6 in-region neighbors."""
        if h not in self._cell_set:
            raise GeometryError(f"{h} is not in the region")
        return self.degree(h) < 6

    def interior(self) -> List[Hex]:
        """Cells whose full 6-neighborhood lies inside the region."""
        return [h for h in self._cells if self.degree(h) == 6]

    def boundary(self) -> List[Hex]:
        """Cells with at least one neighbor outside the region."""
        return [h for h in self._cells if self.degree(h) < 6]

    # -- set algebra ----------------------------------------------------------
    def union(self, other: "HexRegion") -> "FrozenRegion":
        return FrozenRegion(self._cell_set | other._cell_set)

    def intersection(self, other: "HexRegion") -> "FrozenRegion":
        common = self._cell_set & other._cell_set
        if not common:
            raise GeometryError("regions do not intersect")
        return FrozenRegion(common)

    def difference(self, other: "HexRegion") -> "FrozenRegion":
        rest = self._cell_set - other._cell_set
        if not rest:
            raise GeometryError("difference is empty")
        return FrozenRegion(rest)

    def translated(self, offset: Hex) -> "FrozenRegion":
        """The region shifted by ``offset``."""
        return FrozenRegion(h + offset for h in self._cells)

    # -- misc -----------------------------------------------------------------
    def bounding_box(self) -> Tuple[int, int, int, int]:
        """``(q_min, q_max, r_min, r_max)`` over the region's cells."""
        qs = [h.q for h in self._cells]
        rs = [h.r for h in self._cells]
        return (min(qs), max(qs), min(rs), max(rs))

    def is_connected(self) -> bool:
        """True iff the region is one connected component under adjacency."""
        seen: Set[Hex] = set()
        stack = [self._cells[0]]
        while stack:
            h = stack.pop()
            if h in seen:
                continue
            seen.add(h)
            stack.extend(n for n in self.neighbors_in(h) if n not in seen)
        return len(seen) == len(self._cells)


class FrozenRegion(HexRegion):
    """An arbitrary explicit set of cells (result of set algebra)."""


class RectRegion(HexRegion):
    """A ``cols x rows`` rectangle of close-packed hexagons (odd-r layout).

    This is the array shape drawn throughout the paper; rows are offset so
    the hexagons pack tightly.
    """

    def __init__(self, cols: int, rows: int):
        if cols < 1 or rows < 1:
            raise GeometryError(f"rectangle must be at least 1x1, got {cols}x{rows}")
        self.cols = cols
        self.rows = rows
        cells = [offset_to_axial(c, r) for r in range(rows) for c in range(cols)]
        super().__init__(cells)

    def cell_at(self, col: int, row: int) -> Hex:
        """The cell at offset coordinates ``(col, row)``."""
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise GeometryError(
                f"offset ({col},{row}) outside {self.cols}x{self.rows} rectangle"
            )
        return offset_to_axial(col, row)

    def rows_of_cells(self) -> List[List[Hex]]:
        """Cells grouped by row, left to right — used by renderers."""
        return [
            [offset_to_axial(c, r) for c in range(self.cols)] for r in range(self.rows)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"RectRegion({self.cols}x{self.rows})"


class ParallelogramRegion(HexRegion):
    """Axial-aligned parallelogram: ``q in [q0, q0+w)``, ``r in [r0, r0+h)``."""

    def __init__(self, width: int, height: int, q0: int = 0, r0: int = 0):
        if width < 1 or height < 1:
            raise GeometryError(
                f"parallelogram must be at least 1x1, got {width}x{height}"
            )
        self.width = width
        self.height = height
        self.q0 = q0
        self.r0 = r0
        cells = [
            Hex(q, r)
            for q in range(q0, q0 + width)
            for r in range(r0, r0 + height)
        ]
        super().__init__(cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"ParallelogramRegion({self.width}x{self.height}, "
            f"origin=({self.q0},{self.r0}))"
        )


class HexagonRegion(HexRegion):
    """A filled hexagon of given radius around a center cell."""

    def __init__(self, radius: int, center: Optional[Hex] = None):
        if radius < 0:
            raise GeometryError(f"hexagon radius must be >= 0, got {radius}")
        self.radius = radius
        self.center = center if center is not None else Hex(0, 0)
        super().__init__(hex_disk(self.center, radius))

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"HexagonRegion(radius={self.radius}, center={self.center})"
