"""Axial/cube coordinates on the hexagonal (triangular) lattice.

The latest-generation biochips modelled by the paper use *hexagonal
electrodes* arranged in a close-packed 2-D array; every cell has six
physically adjacent cells (Figure 1(b) of the paper).  This module provides
the coordinate algebra everything else is built on.

We use **axial coordinates** ``(q, r)``: the implicit third cube coordinate
is ``s = -q - r`` so that ``q + r + s == 0``.  The six neighbor directions,
in counter-clockwise order starting from "east", are::

    E=(+1, 0)  NE=(+1, -1)  NW=(0, -1)  W=(-1, 0)  SW=(-1, +1)  SE=(0, +1)

Distances are the standard hex (cube) metric; rings, spirals, lines and the
sixfold rotation group are provided because the redundancy-pattern code and
the visualization layer both need them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import GeometryError

__all__ = [
    "Hex",
    "HEX_DIRECTIONS",
    "DIRECTION_NAMES",
    "hex_distance",
    "hex_ring",
    "hex_spiral",
    "hex_disk",
    "hex_line",
    "hex_round",
    "axial_to_pixel",
    "pixel_to_axial",
]


# Counter-clockwise starting at east.  Order matters: rotation and ring
# walking rely on it.
HEX_DIRECTIONS: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, 0),
    (-1, 1),
    (0, 1),
)

DIRECTION_NAMES: Tuple[str, ...] = ("E", "NE", "NW", "W", "SW", "SE")


@dataclass(frozen=True, order=True)
class Hex:
    """A cell location in axial coordinates on the hexagonal lattice.

    Instances are immutable, hashable and totally ordered (lexicographic on
    ``(q, r)``), so they can be used as dict keys and sorted for
    deterministic iteration.
    """

    q: int
    r: int

    # -- cube view ---------------------------------------------------------
    @property
    def s(self) -> int:
        """Implicit third cube coordinate (``q + r + s == 0``)."""
        return -self.q - self.r

    @property
    def cube(self) -> Tuple[int, int, int]:
        """The full cube-coordinate triple ``(q, r, s)``."""
        return (self.q, self.r, self.s)

    @classmethod
    def from_cube(cls, q: int, r: int, s: int) -> "Hex":
        """Build from cube coordinates, checking the zero-sum invariant."""
        if q + r + s != 0:
            raise GeometryError(f"cube coordinates must sum to 0, got ({q}, {r}, {s})")
        return cls(q, r)

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "Hex") -> "Hex":
        return Hex(self.q + other.q, self.r + other.r)

    def __sub__(self, other: "Hex") -> "Hex":
        return Hex(self.q - other.q, self.r - other.r)

    def __mul__(self, k: int) -> "Hex":
        if not isinstance(k, int):
            raise GeometryError(f"hex coordinates scale by integers only, got {k!r}")
        return Hex(self.q * k, self.r * k)

    __rmul__ = __mul__

    def __neg__(self) -> "Hex":
        return Hex(-self.q, -self.r)

    # -- neighborhood ------------------------------------------------------
    def neighbor(self, direction: int) -> "Hex":
        """The adjacent cell in ``direction`` (0..5, CCW from east)."""
        dq, dr = HEX_DIRECTIONS[direction % 6]
        return Hex(self.q + dq, self.r + dr)

    def neighbors(self) -> List["Hex"]:
        """All six physically adjacent cells, CCW from east."""
        return [Hex(self.q + dq, self.r + dr) for dq, dr in HEX_DIRECTIONS]

    def is_adjacent(self, other: "Hex") -> bool:
        """True iff a droplet could move between the two cells in one step."""
        return hex_distance(self, other) == 1

    # -- metric ------------------------------------------------------------
    def distance(self, other: "Hex") -> int:
        """Hex-lattice (minimum number of moves) distance to ``other``."""
        return hex_distance(self, other)

    def length(self) -> int:
        """Distance from the origin."""
        return (abs(self.q) + abs(self.r) + abs(self.s)) // 2

    # -- symmetry ----------------------------------------------------------
    def rotate60(self, times: int = 1) -> "Hex":
        """Rotate about the origin by ``times`` * 60 degrees CCW."""
        q, r, s = self.cube
        for _ in range(times % 6):
            q, r, s = -s, -q, -r
        return Hex(q, r)

    def reflect_q(self) -> "Hex":
        """Reflect across the q-axis (swap r and s)."""
        return Hex(self.q, self.s)

    def __str__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"({self.q},{self.r})"


def hex_distance(a: Hex, b: Hex) -> int:
    """Minimum number of single-cell droplet moves between ``a`` and ``b``."""
    dq = a.q - b.q
    dr = a.r - b.r
    return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


def hex_ring(center: Hex, radius: int) -> List[Hex]:
    """The cells at exactly ``radius`` moves from ``center``.

    ``radius == 0`` returns ``[center]``.  For ``radius >= 1`` the ring has
    ``6 * radius`` cells, listed CCW starting from the cell ``radius`` steps
    east... actually starting from direction 4 (SW corner) per the standard
    ring-walk construction; the starting point is deterministic.
    """
    if radius < 0:
        raise GeometryError(f"ring radius must be >= 0, got {radius}")
    if radius == 0:
        return [center]
    results: List[Hex] = []
    # Start at the corner reached by walking `radius` steps in direction 4.
    cursor = center + Hex(*HEX_DIRECTIONS[4]) * radius
    for direction in range(6):
        for _ in range(radius):
            results.append(cursor)
            cursor = cursor.neighbor(direction)
    return results


def hex_spiral(center: Hex, max_radius: int) -> List[Hex]:
    """All cells within ``max_radius`` of ``center``, ordered by ring."""
    if max_radius < 0:
        raise GeometryError(f"spiral radius must be >= 0, got {max_radius}")
    cells: List[Hex] = [center]
    for radius in range(1, max_radius + 1):
        cells.extend(hex_ring(center, radius))
    return cells


def hex_disk(center: Hex, radius: int) -> List[Hex]:
    """All cells within ``radius`` of ``center`` (a filled hexagon).

    Equivalent to :func:`hex_spiral` but generated directly; contains
    ``3*radius*(radius+1) + 1`` cells.
    """
    if radius < 0:
        raise GeometryError(f"disk radius must be >= 0, got {radius}")
    cells: List[Hex] = []
    for q in range(-radius, radius + 1):
        r_lo = max(-radius, -q - radius)
        r_hi = min(radius, -q + radius)
        for r in range(r_lo, r_hi + 1):
            cells.append(center + Hex(q, r))
    return cells


def hex_round(fq: float, fr: float) -> Hex:
    """Round fractional axial coordinates to the nearest lattice cell."""
    fs = -fq - fr
    q = round(fq)
    r = round(fr)
    s = round(fs)
    dq = abs(q - fq)
    dr = abs(r - fr)
    ds = abs(s - fs)
    if dq > dr and dq > ds:
        q = -r - s
    elif dr > ds:
        r = -q - s
    return Hex(int(q), int(r))


def hex_line(a: Hex, b: Hex) -> List[Hex]:
    """The cells on the straight lattice line from ``a`` to ``b`` inclusive.

    Uses linear interpolation in cube space with per-step rounding; the
    result has ``distance(a, b) + 1`` cells and consecutive cells are
    adjacent, so it is a legal droplet path on a fault-free array.
    """
    n = hex_distance(a, b)
    if n == 0:
        return [a]
    cells: List[Hex] = []
    # Nudge to break ties deterministically when the line passes through
    # cell corners.
    eps = 1e-6
    for i in range(n + 1):
        t = i / n
        fq = a.q + (b.q - a.q) * t + eps * t
        fr = a.r + (b.r - a.r) * t + eps * t
        cells.append(hex_round(fq, fr))
    return cells


def axial_to_pixel(h: Hex, size: float = 1.0) -> Tuple[float, float]:
    """Center of cell ``h`` in Cartesian coordinates ("pointy-top" layout).

    ``size`` is the hexagon circumradius.  Used by the SVG renderer.
    """
    x = size * (math.sqrt(3.0) * h.q + math.sqrt(3.0) / 2.0 * h.r)
    y = size * (1.5 * h.r)
    return (x, y)


def pixel_to_axial(x: float, y: float, size: float = 1.0) -> Hex:
    """Inverse of :func:`axial_to_pixel` (nearest cell)."""
    if size <= 0:
        raise GeometryError(f"hex size must be positive, got {size}")
    fq = (math.sqrt(3.0) / 3.0 * x - 1.0 / 3.0 * y) / size
    fr = (2.0 / 3.0 * y) / size
    return hex_round(fq, fr)
