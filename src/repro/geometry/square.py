"""Square-grid coordinates for the first-generation biochip design.

The fabricated diagnostics chip of Figure 11 uses conventional *square*
electrodes: a droplet moves N/E/S/W to one of four adjacent cells.  The
paper's proposal replaces this with a hexagonal array, but reproducing the
baseline (non-redundant, square-electrode chip with yield 0.99^108 = 0.3378)
requires a square-grid substrate too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Set, Tuple

from repro.errors import GeometryError

__all__ = ["Square", "SQUARE_DIRECTIONS", "SquareRegion", "square_distance"]

# N, E, S, W — droplets on square-electrode chips move orthogonally only.
SQUARE_DIRECTIONS: Tuple[Tuple[int, int], ...] = ((0, -1), (1, 0), (0, 1), (-1, 0))


@dataclass(frozen=True, order=True)
class Square:
    """A cell location on the square-electrode grid."""

    x: int
    y: int

    def __add__(self, other: "Square") -> "Square":
        return Square(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Square") -> "Square":
        return Square(self.x - other.x, self.y - other.y)

    def neighbors(self) -> List["Square"]:
        """The four orthogonally adjacent cells (N, E, S, W)."""
        return [Square(self.x + dx, self.y + dy) for dx, dy in SQUARE_DIRECTIONS]

    def is_adjacent(self, other: "Square") -> bool:
        return square_distance(self, other) == 1

    def distance(self, other: "Square") -> int:
        return square_distance(self, other)

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return f"({self.x},{self.y})"


def square_distance(a: Square, b: Square) -> int:
    """Manhattan distance — minimum droplet moves on a square array."""
    return abs(a.x - b.x) + abs(a.y - b.y)


class SquareRegion:
    """A finite rectangular region of the square grid."""

    def __init__(self, cols: int, rows: int, x0: int = 0, y0: int = 0):
        if cols < 1 or rows < 1:
            raise GeometryError(f"region must be at least 1x1, got {cols}x{rows}")
        self.cols = cols
        self.rows = rows
        self.x0 = x0
        self.y0 = y0
        self._cells: Tuple[Square, ...] = tuple(
            Square(x0 + x, y0 + y) for y in range(rows) for x in range(cols)
        )
        self._cell_set: Set[Square] = set(self._cells)

    def __contains__(self, s: Square) -> bool:
        return s in self._cell_set

    def __iter__(self) -> Iterator[Square]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> Tuple[Square, ...]:
        return self._cells

    def neighbors_in(self, s: Square) -> List[Square]:
        """Neighbors of ``s`` inside the region."""
        return [n for n in s.neighbors() if n in self._cell_set]

    def degree(self, s: Square) -> int:
        return len(self.neighbors_in(s))

    def is_boundary(self, s: Square) -> bool:
        if s not in self._cell_set:
            raise GeometryError(f"{s} is not in the region")
        return self.degree(s) < 4

    def boundary(self) -> List[Square]:
        return [s for s in self._cells if self.degree(s) < 4]

    def interior(self) -> List[Square]:
        return [s for s in self._cells if self.degree(s) == 4]

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"SquareRegion({self.cols}x{self.rows} @ ({self.x0},{self.y0}))"
