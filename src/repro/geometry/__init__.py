"""Grid geometry substrate: hexagonal and square lattices.

Public surface:

* :class:`~repro.geometry.hex.Hex` — axial hex coordinates with the full
  neighborhood / metric / symmetry algebra;
* region classes (:class:`~repro.geometry.hexgrid.RectRegion` etc.) — finite
  biochip footprints;
* :class:`~repro.geometry.lattice.CongruenceLattice` — periodic spare-cell
  patterns;
* :class:`~repro.geometry.square.Square` — the square-electrode baseline.
"""

from repro.geometry.hex import (
    DIRECTION_NAMES,
    HEX_DIRECTIONS,
    Hex,
    axial_to_pixel,
    hex_disk,
    hex_distance,
    hex_line,
    hex_ring,
    hex_round,
    hex_spiral,
    pixel_to_axial,
)
from repro.geometry.hexgrid import (
    FrozenRegion,
    HexagonRegion,
    HexRegion,
    ParallelogramRegion,
    RectRegion,
    axial_to_offset,
    offset_to_axial,
)
from repro.geometry.lattice import (
    CongruenceLattice,
    IntersectionLattice,
    lattice_density,
)
from repro.geometry.square import (
    SQUARE_DIRECTIONS,
    Square,
    SquareRegion,
    square_distance,
)

__all__ = [
    "Hex",
    "HEX_DIRECTIONS",
    "DIRECTION_NAMES",
    "hex_distance",
    "hex_ring",
    "hex_spiral",
    "hex_disk",
    "hex_line",
    "hex_round",
    "axial_to_pixel",
    "pixel_to_axial",
    "HexRegion",
    "RectRegion",
    "ParallelogramRegion",
    "HexagonRegion",
    "FrozenRegion",
    "offset_to_axial",
    "axial_to_offset",
    "CongruenceLattice",
    "IntersectionLattice",
    "lattice_density",
    "Square",
    "SquareRegion",
    "SQUARE_DIRECTIONS",
    "square_distance",
]
