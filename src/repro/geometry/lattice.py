"""Sublattice predicates used by the interstitial-redundancy patterns.

Each DTMB(s, p) architecture in the paper places spare cells on a periodic
sublattice of the hexagonal array (see DESIGN.md section 4).  This module
gives sublattices a first-class representation so the design layer can state
*which* cells are spares declaratively, and so tests can verify periodicity
and density independently of the chip model.

A sublattice here is the solution set of a single linear congruence
``a*q + b*r ≡ c (mod m)`` over axial coordinates.  All patterns used in the
paper fit this form:

===========  =====================  ================
Design       congruence             spare density
===========  =====================  ================
DTMB(1, 6)   q + 3r ≡ 0 (mod 7)     1/7
DTMB(2, 6)A  q ≡ 0 and r ≡ 0 (2)    1/4 (intersection)
DTMB(2, 6)B  q + 2r ≡ 0 (mod 4)     1/4
DTMB(3, 6)   q − r ≡ 0 (mod 3)      1/3
DTMB(4, 4)   q ≡ 0 (mod 2)          1/2
===========  =====================  ================

(DTMB(2,6)A needs the intersection of two congruences, provided by
:class:`IntersectionLattice`.)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.hex import Hex

__all__ = [
    "CongruenceLattice",
    "IntersectionLattice",
    "lattice_density",
]


class CongruenceLattice:
    """Cells satisfying ``a*q + b*r ≡ c (mod m)``."""

    def __init__(self, a: int, b: int, m: int, c: int = 0):
        if m < 2:
            raise GeometryError(f"modulus must be >= 2, got {m}")
        if a % m == 0 and b % m == 0:
            raise GeometryError("degenerate congruence: a and b both ≡ 0 (mod m)")
        self.a = a
        self.b = b
        self.m = m
        self.c = c % m

    def __contains__(self, h: Hex) -> bool:
        return (self.a * h.q + self.b * h.r) % self.m == self.c

    def contains(self, h: Hex) -> bool:
        """Alias of ``in`` for readability at call sites."""
        return h in self

    def translated(self, offset: Hex) -> "CongruenceLattice":
        """The same lattice shifted by ``offset`` (a coset)."""
        new_c = (self.c + self.a * offset.q + self.b * offset.r) % self.m
        return CongruenceLattice(self.a, self.b, self.m, new_c)

    def density(self) -> Fraction:
        """Fraction of lattice cells belonging to this sublattice.

        For a single congruence with gcd(a, b, m) = g this is g/m; computed
        exactly by counting one fundamental ``m x m`` tile.
        """
        return lattice_density(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"CongruenceLattice({self.a}q + {self.b}r ≡ {self.c} mod {self.m})"


class IntersectionLattice:
    """Intersection of several congruence lattices (all must hold)."""

    def __init__(self, parts: Sequence[CongruenceLattice]):
        if not parts:
            raise GeometryError("intersection of zero lattices is undefined")
        self.parts: Tuple[CongruenceLattice, ...] = tuple(parts)

    def __contains__(self, h: Hex) -> bool:
        return all(h in part for part in self.parts)

    def contains(self, h: Hex) -> bool:
        return h in self

    def translated(self, offset: Hex) -> "IntersectionLattice":
        return IntersectionLattice([p.translated(offset) for p in self.parts])

    def density(self) -> Fraction:
        return lattice_density(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"IntersectionLattice({list(self.parts)!r})"


def _period(lat) -> int:
    """A tile size guaranteed to be a period of the membership predicate."""
    if isinstance(lat, CongruenceLattice):
        return lat.m
    if isinstance(lat, IntersectionLattice):
        period = 1
        for part in lat.parts:
            period = _lcm(period, part.m)
        return period
    raise GeometryError(f"unknown lattice type: {type(lat).__name__}")


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a * b // gcd(a, b)


def lattice_density(lat) -> Fraction:
    """Exact fraction of the plane covered by ``lat``.

    Counts membership over one fundamental ``T x T`` tile where ``T`` is a
    period of the predicate; exact because the predicate is periodic in both
    axial directions with period dividing ``T``.
    """
    t = _period(lat)
    hits = sum(1 for q in range(t) for r in range(t) if Hex(q, r) in lat)
    return Fraction(hits, t * t)
