"""Manufacturing-fault models and seeded injection.

* :mod:`repro.faults.model` — the catastrophic/parametric taxonomy of
  Section 4 and the :class:`~repro.faults.model.FaultMap` container;
* :mod:`repro.faults.injection` — Bernoulli (the paper's assumption),
  fixed-count (Figure 13) and clustered spot-defect injectors;
* :mod:`repro.faults.parametric` — geometric-deviation process model.
"""

from repro.faults.injection import (
    CATASTROPHIC_KINDS,
    BernoulliInjector,
    ClusteredInjector,
    FixedCountInjector,
    make_rng,
)
from repro.faults.model import Fault, FaultClass, FaultKind, FaultMap
from repro.faults.parametric import (
    DEFAULT_PROCESS,
    ELECTRODE_LENGTH,
    PARYLENE_THICKNESS,
    PLATE_GAP,
    TEFLON_THICKNESS,
    GeometricParameter,
    ParametricProcess,
)

__all__ = [
    "Fault",
    "FaultClass",
    "FaultKind",
    "FaultMap",
    "BernoulliInjector",
    "FixedCountInjector",
    "ClusteredInjector",
    "CATASTROPHIC_KINDS",
    "make_rng",
    "GeometricParameter",
    "ParametricProcess",
    "DEFAULT_PROCESS",
    "PARYLENE_THICKNESS",
    "TEFLON_THICKNESS",
    "ELECTRODE_LENGTH",
    "PLATE_GAP",
]
