"""Seeded fault injectors for yield simulation.

Three spatial models cover the paper's assumptions and the standard defect
literature it cites (Koren & Koren):

* :class:`BernoulliInjector` — every cell fails independently with
  probability ``q = 1 - p``.  This is the paper's stated assumption
  ("the failures of the cells are independent ... valid for random and
  small spot defects").
* :class:`FixedCountInjector` — exactly ``m`` distinct cells fail, chosen
  uniformly; the model behind Figure 13 ("we randomly introduce m cell
  failures").
* :class:`ClusteredInjector` — spot defects: defect centers land uniformly
  and kill every cell within a radius, modelling larger particles.  Not in
  the paper's evaluation, but included so the independence assumption can
  be stress-tested (see the ablation benchmarks).

All injectors draw from a ``numpy`` Generator so experiments are exactly
reproducible from a seed.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Union

import numpy as np

from repro.chip.biochip import Biochip
from repro.errors import FaultModelError
from repro.faults.model import Fault, FaultKind, FaultMap

__all__ = [
    "make_rng",
    "BernoulliInjector",
    "FixedCountInjector",
    "ClusteredInjector",
    "CATASTROPHIC_KINDS",
]

#: The catastrophic mechanisms, with the relative frequencies used when an
#: injector needs to attribute a mechanism to a dead cell.  The yield model
#: only cares that the cell is dead; the attribution makes injected maps
#: realistic for the test/diagnosis layer and reporting.
CATASTROPHIC_KINDS = (
    FaultKind.DIELECTRIC_BREAKDOWN,
    FaultKind.ELECTRODE_SHORT,
    FaultKind.OPEN_CONNECTION,
)

_DEFAULT_KIND_WEIGHTS = (0.3, 0.3, 0.4)

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Normalize ``seed`` (int, Generator or None) into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _attribute_kinds(
    count: int, rng: np.random.Generator, weights: Sequence[float] = _DEFAULT_KIND_WEIGHTS
) -> List[FaultKind]:
    picks = rng.choice(len(CATASTROPHIC_KINDS), size=count, p=list(weights))
    return [CATASTROPHIC_KINDS[i] for i in picks]


class BernoulliInjector:
    """Independent per-cell failures with probability ``q = 1 - p``."""

    def __init__(self, survival_probability: float):
        if not 0.0 <= survival_probability <= 1.0:
            raise FaultModelError(
                f"survival probability must be in [0, 1], got {survival_probability}"
            )
        self.p = survival_probability
        self.q = 1.0 - survival_probability

    def sample(self, chip: Biochip, seed: RngLike = None) -> FaultMap:
        """One fault map drawn from the model."""
        rng = make_rng(seed)
        coords = chip.coords
        dead = np.nonzero(rng.random(len(coords)) >= self.p)[0]
        kinds = _attribute_kinds(len(dead), rng)
        return FaultMap(
            Fault(coords[i], kind) for i, kind in zip(dead, kinds)
        )

    def sample_survival_matrix(
        self, n_cells: int, runs: int, seed: RngLike = None
    ) -> np.ndarray:
        """Boolean ``(runs, n_cells)`` survival matrix for batched Monte-Carlo.

        Row r, column c is True iff cell c survives in run r.  This is the
        vectorized fast path used by :mod:`repro.yieldsim.montecarlo`.
        """
        if runs < 1 or n_cells < 1:
            raise FaultModelError(f"need runs >= 1 and cells >= 1, got {runs}, {n_cells}")
        rng = make_rng(seed)
        return rng.random((runs, n_cells)) < self.p

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"BernoulliInjector(p={self.p})"


class FixedCountInjector:
    """Exactly ``m`` faulty cells, uniformly random without replacement."""

    def __init__(self, m: int):
        if m < 0:
            raise FaultModelError(f"fault count must be >= 0, got {m}")
        self.m = m

    def sample(self, chip: Biochip, seed: RngLike = None) -> FaultMap:
        if self.m > len(chip):
            raise FaultModelError(
                f"cannot place {self.m} faults on a chip with {len(chip)} cells"
            )
        rng = make_rng(seed)
        coords = chip.coords
        picks = rng.choice(len(coords), size=self.m, replace=False)
        kinds = _attribute_kinds(self.m, rng)
        return FaultMap(Fault(coords[i], kind) for i, kind in zip(picks, kinds))

    def sample_fault_indices(
        self, n_cells: int, runs: int, seed: RngLike = None
    ) -> np.ndarray:
        """``(runs, m)`` matrix of distinct faulty cell indices per run."""
        if self.m > n_cells:
            raise FaultModelError(
                f"cannot place {self.m} faults among {n_cells} cells"
            )
        rng = make_rng(seed)
        out = np.empty((runs, self.m), dtype=np.int64)
        for r in range(runs):
            out[r] = rng.choice(n_cells, size=self.m, replace=False)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"FixedCountInjector(m={self.m})"


class ClusteredInjector:
    """Spot defects: each defect center kills all cells within a radius.

    ``centers_per_cell`` is the expected number of defect centers per array
    cell (a Poisson rate); each center lands on a uniformly random cell and
    kills every cell within lattice distance ``radius`` of it.
    """

    def __init__(self, centers_per_cell: float, radius: int = 1):
        if centers_per_cell < 0:
            raise FaultModelError(
                f"defect rate must be >= 0, got {centers_per_cell}"
            )
        if radius < 0:
            raise FaultModelError(f"spot radius must be >= 0, got {radius}")
        self.centers_per_cell = centers_per_cell
        self.radius = radius

    def sample(self, chip: Biochip, seed: RngLike = None) -> FaultMap:
        rng = make_rng(seed)
        coords = chip.coords
        count = rng.poisson(self.centers_per_cell * len(coords))
        faults: List[Fault] = []
        if count:
            centers = rng.choice(len(coords), size=count, replace=True)
            kinds = _attribute_kinds(count, rng)
            for idx, kind in zip(centers, kinds):
                center = coords[idx]
                killed = self._spot_cells(chip, center)
                faults.extend(Fault(c, kind) for c in killed)
        return FaultMap(faults)

    def _spot_cells(self, chip: Biochip, center: Hashable) -> List[Hashable]:
        """All on-chip cells within ``radius`` moves of ``center`` (BFS)."""
        frontier = [center]
        seen = {center}
        for _ in range(self.radius):
            next_frontier: List[Hashable] = []
            for coord in frontier:
                for neighbor in chip.neighbors(coord):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return sorted(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"ClusteredInjector(rate={self.centers_per_cell}, radius={self.radius})"
        )
