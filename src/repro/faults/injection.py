"""Seeded fault injectors for yield simulation.

Three spatial models cover the paper's assumptions and the standard defect
literature it cites (Koren & Koren):

* :class:`BernoulliInjector` — every cell fails independently with
  probability ``q = 1 - p``.  This is the paper's stated assumption
  ("the failures of the cells are independent ... valid for random and
  small spot defects").
* :class:`FixedCountInjector` — exactly ``m`` distinct cells fail, chosen
  uniformly; the model behind Figure 13 ("we randomly introduce m cell
  failures").
* :class:`ClusteredInjector` — spot defects: defect centers land uniformly
  and kill every cell within a radius, modelling larger particles.  Not in
  the paper's evaluation, but included so the independence assumption can
  be stress-tested (see the ablation benchmarks).

All injectors draw from a ``numpy`` Generator so experiments are exactly
reproducible from a seed.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.chip.biochip import Biochip
from repro.errors import FaultModelError
from repro.faults.model import Fault, FaultKind, FaultMap

__all__ = [
    "make_rng",
    "BernoulliInjector",
    "FixedCountInjector",
    "ClusteredInjector",
    "CATASTROPHIC_KINDS",
]

#: The catastrophic mechanisms, with the relative frequencies used when an
#: injector needs to attribute a mechanism to a dead cell.  The yield model
#: only cares that the cell is dead; the attribution makes injected maps
#: realistic for the test/diagnosis layer and reporting.
CATASTROPHIC_KINDS = (
    FaultKind.DIELECTRIC_BREAKDOWN,
    FaultKind.ELECTRODE_SHORT,
    FaultKind.OPEN_CONNECTION,
)

_DEFAULT_KIND_WEIGHTS = (0.3, 0.3, 0.4)

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Normalize a seed into a Generator.

    Accepts an int, an existing ``Generator`` (passed through), a
    ``SeedSequence`` (consumed directly, matching the engine's
    ``SeedSequence.spawn`` shard-seed plumbing — a spawned child can feed
    any sampler without first being collapsed to an integer), or ``None``
    for fresh OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _attribute_kinds(
    count: int, rng: np.random.Generator, weights: Sequence[float] = _DEFAULT_KIND_WEIGHTS
) -> List[FaultKind]:
    picks = rng.choice(len(CATASTROPHIC_KINDS), size=count, p=list(weights))
    return [CATASTROPHIC_KINDS[i] for i in picks]


class BernoulliInjector:
    """Independent per-cell failures with probability ``q = 1 - p``."""

    def __init__(self, survival_probability: float):
        if not 0.0 <= survival_probability <= 1.0:
            raise FaultModelError(
                f"survival probability must be in [0, 1], got {survival_probability}"
            )
        self.p = survival_probability
        self.q = 1.0 - survival_probability

    def sample(self, chip: Biochip, seed: RngLike = None) -> FaultMap:
        """One fault map drawn from the model."""
        rng = make_rng(seed)
        coords = chip.coords
        dead = np.nonzero(rng.random(len(coords)) >= self.p)[0]
        kinds = _attribute_kinds(len(dead), rng)
        return FaultMap(
            Fault(coords[i], kind) for i, kind in zip(dead, kinds)
        )

    def sample_survival_matrix(
        self, n_cells: int, runs: int, seed: RngLike = None
    ) -> np.ndarray:
        """Boolean ``(runs, n_cells)`` survival matrix for batched Monte-Carlo.

        Row r, column c is True iff cell c survives in run r.  This is the
        vectorized fast path used by :mod:`repro.yieldsim.montecarlo`.
        """
        if runs < 1 or n_cells < 1:
            raise FaultModelError(f"need runs >= 1 and cells >= 1, got {runs}, {n_cells}")
        rng = make_rng(seed)
        return rng.random((runs, n_cells)) < self.p

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"BernoulliInjector(p={self.p})"


class FixedCountInjector:
    """Exactly ``m`` faulty cells, uniformly random without replacement."""

    def __init__(self, m: int):
        if m < 0:
            raise FaultModelError(f"fault count must be >= 0, got {m}")
        self.m = m

    def sample(self, chip: Biochip, seed: RngLike = None) -> FaultMap:
        if self.m > len(chip):
            raise FaultModelError(
                f"cannot place {self.m} faults on a chip with {len(chip)} cells"
            )
        rng = make_rng(seed)
        coords = chip.coords
        picks = rng.choice(len(coords), size=self.m, replace=False)
        kinds = _attribute_kinds(self.m, rng)
        return FaultMap(Fault(coords[i], kind) for i, kind in zip(picks, kinds))

    def sample_fault_indices(
        self, n_cells: int, runs: int, seed: RngLike = None
    ) -> np.ndarray:
        """``(runs, m)`` matrix of distinct faulty cell indices per run."""
        if self.m > n_cells:
            raise FaultModelError(
                f"cannot place {self.m} faults among {n_cells} cells"
            )
        rng = make_rng(seed)
        out = np.empty((runs, self.m), dtype=np.int64)
        for r in range(runs):
            out[r] = rng.choice(n_cells, size=self.m, replace=False)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"FixedCountInjector(m={self.m})"


class ClusteredInjector:
    """Spot defects: each defect center kills all cells within a radius.

    ``centers_per_cell`` is the expected number of defect centers per array
    cell (a Poisson rate); each center lands on a uniformly random cell and
    kills every cell within lattice distance ``radius`` of it.

    This is the object-level view of
    :class:`repro.yieldsim.defects.SpotDefects` — sampling delegates to
    the vectorized model (one code path for the spatial statistics), so a
    fault map drawn here kills exactly the cells the engine's survival
    matrix would kill at the same seed; this injector merely adds the
    per-center fault-kind attribution the test/diagnosis layer wants.
    """

    def __init__(self, centers_per_cell: float, radius: int = 1):
        if centers_per_cell < 0:
            raise FaultModelError(
                f"defect rate must be >= 0, got {centers_per_cell}"
            )
        if radius < 0:
            raise FaultModelError(f"spot radius must be >= 0, got {radius}")
        self.centers_per_cell = centers_per_cell
        self.radius = radius

    def _model(self):
        # Imported lazily: repro.yieldsim pulls this module in through the
        # kernel, so a top-level import would be circular.
        from repro.yieldsim.defects import SpotDefects

        return SpotDefects(self.centers_per_cell, self.radius)

    def sample(self, chip: Biochip, seed: RngLike = None) -> FaultMap:
        from repro.yieldsim.defects import geometry_for

        rng = make_rng(seed)
        geometry = geometry_for(chip)
        model = self._model()
        _, centers = model.sample_centers(geometry, 1, rng)
        faults: List[Fault] = []
        if centers.size:
            # Kinds are attributed per center *after* the spatial draw, so
            # the set of killed cells is exactly the model's at this seed.
            kinds = _attribute_kinds(len(centers), rng)
            idx, mask = geometry.ball(self.radius)
            coords = chip.coords
            for center, kind in zip(centers, kinds):
                killed = idx[center][mask[center]]
                faults.extend(Fault(coords[c], kind) for c in killed)
        return FaultMap(faults)

    def sample_survival_matrix(
        self, n_cells_or_chip, runs: int, seed: RngLike = None
    ) -> np.ndarray:
        """Boolean ``(runs, cells)`` survival matrix via the vectorized model.

        Unlike the Bernoulli injector, spot sampling needs the chip's
        geometry, so the first argument must be the :class:`Biochip`
        itself (an integer cell count cannot describe adjacency).
        """
        if not isinstance(n_cells_or_chip, Biochip):
            raise FaultModelError(
                "clustered sampling needs the Biochip (spatial adjacency), "
                f"got {type(n_cells_or_chip).__name__}"
            )
        from repro.yieldsim.defects import geometry_for

        return self._model().sample_batch(
            geometry_for(n_cells_or_chip), runs, make_rng(seed)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"ClusteredInjector(rate={self.centers_per_cell}, radius={self.radius})"
        )
