"""Parametric-fault model: geometrical parameter deviations vs tolerance.

Section 4: "Manufacturing defects that cause parametric faults include
geometrical parameter deviations.  The deviation in insulator thickness,
electrode length and height between parallel plates may exceed their
tolerance value during fabrication."  A parametric fault is detectable only
if the deviation exceeds the system performance tolerance — and only then
does reconfiguration treat the cell as faulty.

This module samples per-cell parameter values around the nominal geometry of
the Duke electrowetting chips (Parylene C insulator ~800 nm, Teflon AF 1600
coating ~50 nm per Figure 1) and converts out-of-tolerance cells into
:class:`~repro.faults.model.Fault` records, so the yield experiments can mix
catastrophic and parametric populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.chip.biochip import Biochip
from repro.errors import FaultModelError
from repro.faults.injection import RngLike, make_rng
from repro.faults.model import Fault, FaultKind, FaultMap

__all__ = [
    "GeometricParameter",
    "PARYLENE_THICKNESS",
    "TEFLON_THICKNESS",
    "ELECTRODE_LENGTH",
    "PLATE_GAP",
    "DEFAULT_PROCESS",
    "ParametricProcess",
]


@dataclass(frozen=True)
class GeometricParameter:
    """One manufactured geometric parameter with its process statistics.

    Parameters
    ----------
    name:
        Human-readable parameter name.
    kind:
        The :class:`FaultKind` attributed when this parameter is out of
        tolerance.
    nominal:
        Design value (meters).
    sigma:
        Standard deviation of the fabrication process (meters).
    tolerance:
        Maximum |deviation| from nominal (meters) the system tolerates.
    """

    name: str
    kind: FaultKind
    nominal: float
    sigma: float
    tolerance: float

    def __post_init__(self) -> None:
        if self.nominal <= 0:
            raise FaultModelError(f"{self.name}: nominal must be > 0")
        if self.sigma < 0:
            raise FaultModelError(f"{self.name}: sigma must be >= 0")
        if self.tolerance <= 0:
            raise FaultModelError(f"{self.name}: tolerance must be > 0")

    def out_of_tolerance_probability(self) -> float:
        """P(|X - nominal| > tolerance) under the Gaussian process model."""
        if self.sigma == 0:
            return 0.0
        from math import erf, sqrt

        z = self.tolerance / self.sigma
        return 1.0 - erf(z / sqrt(2.0))


# Nominal geometry from the paper (Figure 1 caption) and the Duke chip
# literature it cites; sigmas/tolerances are representative process values.
PARYLENE_THICKNESS = GeometricParameter(
    name="Parylene C insulator thickness",
    kind=FaultKind.INSULATOR_THICKNESS,
    nominal=800e-9,
    sigma=25e-9,
    tolerance=80e-9,
)

TEFLON_THICKNESS = GeometricParameter(
    name="Teflon AF 1600 coating thickness",
    kind=FaultKind.INSULATOR_THICKNESS,
    nominal=50e-9,
    sigma=4e-9,
    tolerance=15e-9,
)

ELECTRODE_LENGTH = GeometricParameter(
    name="electrode length",
    kind=FaultKind.ELECTRODE_LENGTH,
    nominal=1.5e-3,
    sigma=8e-6,
    tolerance=30e-6,
)

PLATE_GAP = GeometricParameter(
    name="height between parallel plates",
    kind=FaultKind.PLATE_GAP,
    nominal=300e-6,
    sigma=6e-6,
    tolerance=20e-6,
)


class ParametricProcess:
    """Samples per-cell geometry and reports out-of-tolerance cells."""

    def __init__(self, parameters: Tuple[GeometricParameter, ...]):
        if not parameters:
            raise FaultModelError("a process needs at least one parameter")
        self.parameters = parameters

    def sample_values(
        self, chip: Biochip, seed: RngLike = None
    ) -> Dict[str, np.ndarray]:
        """Parameter name → per-cell sampled values (chip coordinate order)."""
        rng = make_rng(seed)
        return {
            param.name: rng.normal(param.nominal, param.sigma, size=len(chip))
            for param in self.parameters
        }

    def sample_faults(self, chip: Biochip, seed: RngLike = None) -> FaultMap:
        """Cells where any parameter exceeds tolerance, as a fault map."""
        rng = make_rng(seed)
        coords = chip.coords
        fault_map = FaultMap()
        for param in self.parameters:
            values = rng.normal(param.nominal, param.sigma, size=len(coords))
            bad = np.nonzero(np.abs(values - param.nominal) > param.tolerance)[0]
            for i in bad:
                deviation = float(
                    (values[i] - param.nominal) / param.nominal
                )
                fault_map.add(Fault(coords[i], param.kind, deviation=deviation))
        return fault_map

    def cell_failure_probability(self) -> float:
        """P(cell out of tolerance on >= 1 parameter), parameters independent."""
        survive = 1.0
        for param in self.parameters:
            survive *= 1.0 - param.out_of_tolerance_probability()
        return 1.0 - survive


#: A representative process combining all four geometry parameters.
DEFAULT_PROCESS = ParametricProcess(
    (PARYLENE_THICKNESS, TEFLON_THICKNESS, ELECTRODE_LENGTH, PLATE_GAP)
)
