"""Fault taxonomy for digital microfluidics-based biochips (Section 4).

The paper classifies manufacturing faults along the lines of analog-circuit
fault classification:

* **catastrophic** (hard) faults — complete malfunction of a cell:
  dielectric breakdown, a short between adjacent electrodes, or an open in
  the metal connection between the electrode and its control source;
* **parametric** (soft) faults — geometrical parameter deviations (insulator
  thickness, electrode length, plate gap).  A parametric fault is
  *detectable* — and must be repaired around — only if the deviation exceeds
  the system performance tolerance.

A :class:`FaultMap` collects the faults present on one manufactured chip
instance and can be applied to a :class:`~repro.chip.biochip.Biochip`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.chip.biochip import Biochip
from repro.errors import FaultModelError

__all__ = ["FaultClass", "FaultKind", "Fault", "FaultMap"]


class FaultClass(enum.Enum):
    """Catastrophic vs parametric, per the analog-style classification."""

    CATASTROPHIC = "catastrophic"
    PARAMETRIC = "parametric"


class FaultKind(enum.Enum):
    """Specific failure mechanisms called out in Section 4 of the paper."""

    #: Dielectric breakdown at high voltage: droplet-electrode short,
    #: electrolysis prevents further transportation.
    DIELECTRIC_BREAKDOWN = "dielectric-breakdown"
    #: Short between two adjacent electrodes: they act as one long electrode
    #: and droplet actuation is lost.
    ELECTRODE_SHORT = "electrode-short"
    #: Open in the metal connection to the control source: the electrode
    #: can never be activated.
    OPEN_CONNECTION = "open-connection"
    #: Insulator (Parylene C) thickness outside tolerance.
    INSULATOR_THICKNESS = "insulator-thickness"
    #: Electrode length outside tolerance.
    ELECTRODE_LENGTH = "electrode-length"
    #: Gap between the parallel plates outside tolerance.
    PLATE_GAP = "plate-gap"

    @property
    def fault_class(self) -> FaultClass:
        if self in (
            FaultKind.DIELECTRIC_BREAKDOWN,
            FaultKind.ELECTRODE_SHORT,
            FaultKind.OPEN_CONNECTION,
        ):
            return FaultClass.CATASTROPHIC
        return FaultClass.PARAMETRIC


@dataclass(frozen=True)
class Fault:
    """One fault instance on one cell.

    ``deviation`` is meaningful for parametric kinds only: the fractional
    deviation of the parameter from nominal.  Whether a parametric fault
    disables the cell depends on the tolerance applied by the caller
    (:mod:`repro.faults.parametric`); faults placed in a :class:`FaultMap`
    are by convention the ones that *do* disable their cell.
    """

    coord: Hashable
    kind: FaultKind
    deviation: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind.fault_class is FaultClass.PARAMETRIC and self.deviation is None:
            raise FaultModelError(
                f"parametric fault {self.kind.value} at {self.coord} "
                "requires a deviation value"
            )

    @property
    def is_catastrophic(self) -> bool:
        return self.kind.fault_class is FaultClass.CATASTROPHIC


class FaultMap:
    """The set of cell faults on one manufactured chip instance.

    At most one fault is recorded per cell (the first one wins — a cell
    that is already dead cannot fail "more"), which matches the yield
    model's view of a cell as simply good or faulty.
    """

    def __init__(self, faults: Iterable[Fault] = ()):
        self._faults: Dict[Hashable, Fault] = {}
        for fault in faults:
            self.add(fault)

    def add(self, fault: Fault) -> None:
        self._faults.setdefault(fault.coord, fault)

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(sorted(self._faults.values(), key=lambda f: f.coord))

    def __contains__(self, coord: Hashable) -> bool:
        return coord in self._faults

    @property
    def coords(self) -> Set[Hashable]:
        """The coordinates of all faulty cells."""
        return set(self._faults)

    def fault_at(self, coord: Hashable) -> Fault:
        try:
            return self._faults[coord]
        except KeyError:
            raise FaultModelError(f"no fault recorded at {coord}") from None

    def catastrophic(self) -> List[Fault]:
        return [f for f in self if f.is_catastrophic]

    def parametric(self) -> List[Fault]:
        return [f for f in self if not f.is_catastrophic]

    def by_kind(self) -> Dict[FaultKind, int]:
        """Histogram of fault kinds — useful in injection reports."""
        counts: Dict[FaultKind, int] = {}
        for fault in self._faults.values():
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts

    def apply_to(self, chip: Biochip) -> None:
        """Mark every faulted coordinate on ``chip``.

        Raises :class:`FaultModelError` if a fault refers to a coordinate
        that is not on the chip, which would indicate the map was generated
        for a different layout.
        """
        missing = [c for c in self._faults if c not in chip]
        if missing:
            raise FaultModelError(
                f"fault map refers to {len(missing)} coordinates not on chip "
                f"{chip.name!r} (first: {sorted(missing)[:3]})"
            )
        chip.apply_fault_map(self._faults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"FaultMap({len(self)} faults)"
