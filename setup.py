import setuptools; setuptools.setup()
